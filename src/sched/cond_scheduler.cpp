#include "sched/cond_scheduler.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "fault/recovery.h"
#include "graph/digraph.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace ftes {

namespace {

/// Static data about one copy, shared by all scenarios.
struct CopyInfo {
  CopyRef ref;
  NodeId node;
  RecoveryParams params;
  int checkpoints = 0;   ///< 0 = pure replica
  int recoveries = 0;
  Time release = 0;
  bool frozen = false;
  std::string name;      ///< display: "P1" or "P1(2)"
  Time rank = 0;         ///< list-scheduling priority
};

struct TripleKey {
  int dst_copy;  ///< global copy index of the consumer
  std::int32_t msg;
  int src_copy;  ///< producer copy index within its plan; -1 for frozen sync
  friend bool operator<(const TripleKey& a, const TripleKey& b) {
    if (a.dst_copy != b.dst_copy) return a.dst_copy < b.dst_copy;
    if (a.msg != b.msg) return a.msg < b.msg;
    return a.src_copy < b.src_copy;
  }
};

class CondSim {
 public:
  CondSim(const Application& app, const Architecture& arch,
          const PolicyAssignment& pa, const FaultModel& fm,
          const CondScheduleOptions& opts)
      : app_(app), arch_(arch), pa_(pa), fm_(fm), opts_(opts) {
    build_static_info();
  }

  CondScheduleResult run() {
    const std::vector<FaultScenario> scenarios =
        enumerate_scenarios(app_, pa_, fm_.k);
    if (static_cast<int>(scenarios.size()) > opts_.max_scenarios) {
      throw std::length_error("scenario tree exceeds max_scenarios");
    }
    threads_ = resolve_threads(opts_.threads);
    pool_ = opts_.pool ? opts_.pool : &ThreadPool::shared();

    // Register every condition id a scenario can reveal, serially and in
    // scenario order, so the id numbering matches the serial generator and
    // the simulations below can run concurrently with a read-only registry.
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      if ((s & 1023u) == 0u) throw_if_cancelled();
      register_scenario_conditions(scenarios[s]);
    }

    CondScheduleResult result;
    // Fixpoint over frozen starts.  Within one iteration the scenarios are
    // independent (they read the same pins), so they simulate in parallel
    // into scenario-ordered slots.
    for (int iter = 0; iter < opts_.max_fixpoint_iterations; ++iter) {
      result.traces.assign(scenarios.size(), ScenarioTrace{});
      bool moved = false;
      parallel_for(*pool_, scenarios.size(), threads_, [&](std::size_t i) {
        // Chunk-granular cancellation point: a deadline fires within one
        // scenario simulation; the partial traces are discarded below.
        if (opts_.cancel && opts_.cancel->poll()) return;
        result.traces[i] = simulate(scenarios[i]);
      });
      throw_if_cancelled();
      // Raise pins to the observed maxima.
      for (const ScenarioTrace& tr : result.traces) {
        for (const ExecTrace& e : tr.execs) {
          const std::size_t ci = static_cast<std::size_t>(
              copy_at(e.copy.process.get(), e.copy.copy));
          if (!copies_[ci].frozen) continue;
          Time& pin = copy_pins_[ci];
          if (e.start > pin) {
            pin = e.start;
            moved = true;
          }
        }
        for (const TxTrace& tx : tr.txs) {
          if (tx.is_condition || !is_frozen_msg(tx.msg)) continue;
          Time& pin = msg_pins_[static_cast<std::size_t>(tx.msg.get())];
          if (tx.start > pin) {
            pin = tx.start;
            moved = true;
          }
        }
      }
      if (!moved) break;
      if (iter + 1 == opts_.max_fixpoint_iterations) {
        FTES_LOG(kWarn) << "frozen-start fixpoint did not converge";
      }
    }

    result.scenario_count = static_cast<int>(result.traces.size());
    for (const ScenarioTrace& tr : result.traces) {
      result.wcsl = std::max(result.wcsl, tr.makespan);
    }
    for (std::size_t ci = 0; ci < copies_.size(); ++ci) {
      if (copies_[ci].frozen) {
        result.frozen_starts[copies_[ci].name] = copy_pins_[ci];
      }
    }
    for (const Message& m : app_.messages()) {
      if (opts_.respect_transparency && m.frozen) {
        // Report pinned frozen message starts alongside process pins.
        result.frozen_starts[m.name] =
            msg_pins_[static_cast<std::size_t>(&m - app_.messages().data())];
      }
    }
    build_tables(result);
    result.tables.wcsl = result.wcsl;
    result.tables.scenario_count = result.scenario_count;
    return result;
  }

 private:
  // ---------------------------------------------------------------- setup
  void build_static_info() {
    // Flat (process, copy) -> global copy index via per-process prefix
    // offsets: the simulate() inner loops and the fixpoint pin updates hit
    // this lookup constantly, so no std::map on that path.
    first_copy_.assign(static_cast<std::size_t>(app_.process_count()) + 1, 0);
    for (int i = 0; i < app_.process_count(); ++i) {
      first_copy_[static_cast<std::size_t>(i) + 1] =
          first_copy_[static_cast<std::size_t>(i)] +
          pa_.plan(ProcessId{i}).copy_count();
    }
    for (int i = 0; i < app_.process_count(); ++i) {
      const ProcessId pid{i};
      const Process& proc = app_.process(pid);
      const ProcessPlan& plan = pa_.plan(pid);
      for (int j = 0; j < plan.copy_count(); ++j) {
        const CopyPlan& cp = plan.copies[static_cast<std::size_t>(j)];
        CopyInfo info;
        info.ref = CopyRef{pid, j};
        info.node = cp.node;
        info.params =
            RecoveryParams{proc.wcet_on(cp.node), proc.alpha, proc.mu,
                           proc.chi};
        info.checkpoints = cp.checkpoints;
        info.recoveries = cp.recoveries;
        info.release = proc.release;
        info.frozen = opts_.respect_transparency && proc.frozen;
        info.name = plan.copy_count() > 1
                        ? proc.name + "(" + std::to_string(j + 1) + ")"
                        : proc.name;
        assert(copy_at(pid.get(), j) == static_cast<int>(copies_.size()));
        copies_.push_back(info);
      }
    }
    copy_pins_.assign(copies_.size(), 0);
    msg_pins_.assign(static_cast<std::size_t>(app_.message_count()), 0);

    // Priorities: partial critical path over the copy graph.
    Digraph g(static_cast<int>(copies_.size()));
    for (const Message& m : app_.messages()) {
      const ProcessPlan& sp = pa_.plan(m.src);
      const ProcessPlan& dp = pa_.plan(m.dst);
      for (int sj = 0; sj < sp.copy_count(); ++sj) {
        for (int dj = 0; dj < dp.copy_count(); ++dj) {
          g.add_edge(copy_at(m.src.get(), sj),
                     copy_at(m.dst.get(), dj));
        }
      }
    }
    const std::vector<Time> rank = g.critical_path_from([&](int v) {
      const CopyInfo& ci = copies_[static_cast<std::size_t>(v)];
      Time dur = ci.checkpoints >= 1
                     ? checkpointed_exec_time(ci.params, ci.checkpoints, 0)
                     : replica_exec_time(ci.params);
      Time comm = 0;
      for (MessageId mid : app_.outputs(ci.ref.process)) {
        comm = std::max(comm, arch_.bus().worst_case_duration(
                                  ci.node, app_.message(mid).size));
      }
      return dur + comm;
    });
    for (std::size_t i = 0; i < copies_.size(); ++i) {
      copies_[i].rank = rank[i];
    }
  }

  [[nodiscard]] bool is_frozen_msg(MessageId m) const {
    return opts_.respect_transparency &&
           app_.message(m).frozen;
  }

  /// True if message m needs a bus transmission under this assignment.
  [[nodiscard]] bool msg_needs_bus(const Message& m) const {
    if (is_frozen_msg(MessageId{static_cast<std::int32_t>(
            &m - app_.messages().data())})) {
      return true;
    }
    const ProcessPlan& sp = pa_.plan(m.src);
    const ProcessPlan& dp = pa_.plan(m.dst);
    for (const CopyPlan& s : sp.copies) {
      for (const CopyPlan& d : dp.copies) {
        if (s.node != d.node) return true;
      }
    }
    return false;
  }

  // ------------------------------------------------------------- scenario
  struct CopyRun {
    bool committed = false;
    bool survived = true;
    int faults = 0;
    Time duration = 0;  ///< start -> end (completion or death)
    Time start = 0;
    Time end = 0;
    int unresolved = 0;
    Time data_ready = 0;
    std::vector<Time> attempt_offsets;           ///< relative
    std::vector<Reveal> reveal_offsets;          ///< relative times
  };

  struct PendingTx {
    TxTrace tx;          ///< ready/sender/meta filled; start/finish pending
    int seq = 0;         ///< deterministic tie-break
  };

  ScenarioTrace simulate(const FaultScenario& scenario) const {
    ScenarioTrace trace;
    trace.scenario = scenario;

    std::vector<CopyRun> runs(copies_.size());
    // Precompute per-copy fate.
    for (std::size_t i = 0; i < copies_.size(); ++i) {
      const CopyInfo& ci = copies_[i];
      CopyRun& run = runs[i];
      run.faults = scenario.faults_on(ci.ref);
      const int n = std::max(ci.checkpoints, 1);
      const int r_cond = ci.checkpoints >= 1 ? ci.recoveries : 0;
      run.survived = run.faults <= r_cond;
      if (run.survived) {
        run.duration =
            ci.checkpoints >= 1
                ? checkpointed_exec_time(ci.params, ci.checkpoints, run.faults)
                : replica_exec_time(ci.params);
      } else {
        run.duration = fault_occurrence_offset(ci.params, n, r_cond + 1) +
                       ci.params.alpha;
      }
      run.attempt_offsets.push_back(0);
      const int executed_recoveries =
          run.survived ? run.faults : r_cond;
      for (int a = 1; a <= executed_recoveries; ++a) {
        run.attempt_offsets.push_back(
            recovery_start_offset(ci.params, n, a));
      }
      // Condition reveals, as derived in DESIGN.md / recovery.h.  All ids
      // were registered up front (run()), so the lookups are read-only and
      // simulate() is safe to run concurrently across scenarios.
      if (run.survived) {
        const int last = std::min(run.faults + 1, r_cond);
        for (int j = 1; j <= last; ++j) {
          const bool value = j <= run.faults;
          const Time at = value
                              ? fault_occurrence_offset(ci.params, n, j)
                              : run.duration;
          run.reveal_offsets.push_back(Reveal{cond_lookup(ci, j), value, at});
        }
      } else {
        for (int j = 1; j <= r_cond + 1; ++j) {
          run.reveal_offsets.push_back(
              Reveal{cond_lookup(ci, j), true,
                     fault_occurrence_offset(ci.params, n, j)});
        }
      }
      // Dependency counters: one triple per (input msg, producer copy) or
      // one per frozen message.
      for (MessageId mid : app_.inputs(ci.ref.process)) {
        if (is_frozen_msg(mid)) {
          run.unresolved += 1;
        } else {
          run.unresolved += pa_.plan(app_.message(mid).src).copy_count();
        }
      }
    }

    // lint: cold-path -- per-scenario simulation state during table
    // generation; the per-move evaluation path (opt/eval_context.h) never
    // enters the conditional scheduler
    std::map<TripleKey, bool> resolved;
    auto resolve = [&](int dst_copy, MessageId mid, int src_copy, Time at) {
      TripleKey key{dst_copy, mid.get(), src_copy};
      auto [it, inserted] = resolved.emplace(key, true);
      if (!inserted) return;
      CopyRun& run = runs[static_cast<std::size_t>(dst_copy)];
      run.data_ready = std::max(run.data_ready, at);
      --run.unresolved;
      assert(run.unresolved >= 0);
    };
    std::vector<PendingTx> pending;
    int tx_seq = 0;
    // Frozen messages: emitted once all producer copies committed.
    std::vector<bool> frozen_emitted(
        static_cast<std::size_t>(app_.message_count()), false);

    std::vector<Time> node_free(static_cast<std::size_t>(arch_.node_count()),
                                0);
    Time bus_free = 0;
    std::size_t committed = 0;

    // Resolution policy: local consumers of a copy resolve at the copy's
    // end (completion or locally observed death); remote consumers resolve
    // at the data transmission's end (survivor) or at the death broadcast's
    // end (dead copy).  resolve() is idempotent per triple.
    auto commit_copy_fixed = [&](std::size_t i, Time start) {
      const CopyInfo& ci = copies_[i];
      CopyRun& run = runs[i];
      run.committed = true;
      run.start = start;
      run.end = start + run.duration;
      node_free[static_cast<std::size_t>(ci.node.get())] = run.end;
      ++committed;

      for (const Reveal& rel : run.reveal_offsets) {
        Reveal abs{rel.cond_id, rel.value, start + rel.at};
        trace.reveals.push_back(abs);
        if (!opts_.schedule_condition_broadcasts) continue;
        PendingTx tx;
        tx.tx.is_condition = true;
        tx.tx.cond_id = rel.cond_id;
        tx.tx.value = rel.value;
        tx.tx.sender = ci.node;
        tx.tx.ready = abs.at;
        tx.seq = ++tx_seq;
        pending.push_back(tx);
      }

      for (MessageId mid : app_.outputs(ci.ref.process)) {
        const Message& m = app_.message(mid);
        if (is_frozen_msg(mid)) continue;
        const bool bus = msg_needs_bus(m);
        // Local consumers always resolve at the copy's end (completion or
        // locally observed death).
        const ProcessPlan& dp = pa_.plan(m.dst);
        for (int dj = 0; dj < dp.copy_count(); ++dj) {
          const int dst = copy_at(m.dst.get(), dj);
          if (copies_[static_cast<std::size_t>(dst)].node == ci.node) {
            resolve(dst, mid, ci.ref.copy, run.end);
          } else if (!run.survived && !opts_.schedule_condition_broadcasts) {
            // Idealized signalling: remote consumers learn the death
            // instantly (no death broadcast will be scheduled).
            resolve(dst, mid, ci.ref.copy, run.end);
          }
        }
        if (run.survived && bus) {
          PendingTx tx;
          tx.tx.msg = mid;
          tx.tx.src_copy = ci.ref.copy;
          tx.tx.sender = ci.node;
          tx.tx.ready = run.end;
          tx.seq = ++tx_seq;
          pending.push_back(tx);
        }
      }
    };

    // Death broadcasts double as remote death knowledge: when a condition
    // transmission that encodes "fault r+1" of a dead copy commits, remote
    // consumers of that copy's messages resolve.
    auto on_condition_committed = [&](const TxTrace& tx) {
      const CopyRef src = cond_copy_.at(tx.cond_id);
      const std::size_t ci = static_cast<std::size_t>(
          copy_at(src.process.get(), src.copy));
      const CopyInfo& info = copies_[ci];
      const CopyRun& run = runs[ci];
      if (run.survived) return;
      const int r_cond = info.checkpoints >= 1 ? info.recoveries : 0;
      if (cond_index_.at(tx.cond_id) != r_cond + 1) return;
      for (MessageId mid : app_.outputs(src.process)) {
        if (is_frozen_msg(mid)) continue;
        const Message& m = app_.message(mid);
        const ProcessPlan& dp = pa_.plan(m.dst);
        for (int dj = 0; dj < dp.copy_count(); ++dj) {
          const int dst = copy_at(m.dst.get(), dj);
          if (copies_[static_cast<std::size_t>(dst)].node != info.node) {
            resolve(dst, mid, src.copy, tx.finish);
          }
        }
      }
    };

    // ---- main event loop -------------------------------------------------
    while (committed < copies_.size() || !pending.empty() ||
           has_unemitted_frozen(frozen_emitted, runs)) {
      // Emit frozen messages whose producers are all committed.
      for (int mi = 0; mi < app_.message_count(); ++mi) {
        const MessageId mid{mi};
        if (!is_frozen_msg(mid) ||
            frozen_emitted[static_cast<std::size_t>(mi)]) {
          continue;
        }
        const Message& m = app_.message(mid);
        const ProcessPlan& sp = pa_.plan(m.src);
        bool all_committed = true;
        Time earliest = kTimeInfinity;
        for (int sj = 0; sj < sp.copy_count(); ++sj) {
          const CopyRun& run =
              runs[static_cast<std::size_t>(copy_at(m.src.get(), sj))];
          if (!run.committed) {
            all_committed = false;
            break;
          }
          if (run.survived) earliest = std::min(earliest, run.end);
        }
        if (!all_committed) continue;
        if (earliest == kTimeInfinity) {
          throw std::logic_error(
              "all producer copies of a frozen message died (inadmissible "
              "scenario reached a frozen sync)");
        }
        PendingTx tx;
        tx.tx.msg = mid;
        tx.tx.src_copy = -1;
        tx.tx.sender =
            copies_[static_cast<std::size_t>(copy_at(m.src.get(), 0))]
                .node;
        tx.tx.ready =
            std::max(earliest, msg_pins_[static_cast<std::size_t>(mi)]);
        tx.seq = ++tx_seq;
        pending.push_back(tx);
        frozen_emitted[static_cast<std::size_t>(mi)] = true;
      }

      // Earliest startable copy.
      Time best_start = kTimeInfinity;
      int best = -1;
      for (std::size_t i = 0; i < copies_.size(); ++i) {
        const CopyRun& run = runs[i];
        if (run.committed || run.unresolved > 0) continue;
        const CopyInfo& ci = copies_[i];
        Time start = std::max({run.data_ready, ci.release,
                               node_free[static_cast<std::size_t>(
                                   ci.node.get())]});
        if (ci.frozen) start = std::max(start, copy_pins_[i]);
        if (start < best_start ||
            (start == best_start && best >= 0 &&
             copies_[static_cast<std::size_t>(best)].rank < ci.rank)) {
          best_start = start;
          best = static_cast<int>(i);
        }
      }

      // Earliest pending transmission.
      Time best_tx_ready = kTimeInfinity;
      std::size_t tx_pick = pending.size();
      for (std::size_t t = 0; t < pending.size(); ++t) {
        if (pending[t].tx.ready < best_tx_ready ||
            (pending[t].tx.ready == best_tx_ready &&
             tx_pick < pending.size() &&
             pending[t].seq < pending[tx_pick].seq)) {
          best_tx_ready = pending[t].tx.ready;
          tx_pick = t;
        }
      }

      if (tx_pick < pending.size() &&
          (best < 0 || best_tx_ready <= best_start)) {
        PendingTx ptx = pending[tx_pick];
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(tx_pick));
        TxTrace& tx = ptx.tx;
        const std::int64_t size =
            tx.is_condition ? 1 : app_.message(tx.msg).size;
        const Time ready = std::max(tx.ready, bus_free);
        tx.start = arch_.bus().next_slot_start(tx.sender, ready);
        tx.finish = arch_.bus().transmission_finish(tx.sender, ready, size);
        bus_free = tx.finish;
        if (tx.is_condition) {
          on_condition_committed(tx);
        } else if (tx.src_copy < 0) {
          // Frozen sync: resolves every consumer copy.
          const Message& m = app_.message(tx.msg);
          const ProcessPlan& dp = pa_.plan(m.dst);
          for (int dj = 0; dj < dp.copy_count(); ++dj) {
            resolve(copy_at(m.dst.get(), dj), tx.msg, -1, tx.finish);
          }
        } else {
          // Data: remote consumers resolve at the transmission's end.
          const Message& m = app_.message(tx.msg);
          const ProcessPlan& dp = pa_.plan(m.dst);
          for (int dj = 0; dj < dp.copy_count(); ++dj) {
            const int dst = copy_at(m.dst.get(), dj);
            if (copies_[static_cast<std::size_t>(dst)].node != tx.sender) {
              resolve(dst, tx.msg, tx.src_copy, tx.finish);
            }
          }
        }
        trace.txs.push_back(tx);
        continue;
      }

      if (best < 0) {
        if (committed == copies_.size() && pending.empty()) break;
        throw std::logic_error("conditional scheduler deadlock");
      }
      commit_copy_fixed(static_cast<std::size_t>(best), best_start);
    }

    // Collect execution records and the makespan.
    for (std::size_t i = 0; i < copies_.size(); ++i) {
      const CopyRun& run = runs[i];
      ExecTrace e;
      e.copy = copies_[i].ref;
      e.start = run.start;
      e.end = run.end;
      e.died = !run.survived;
      e.faults = run.faults;
      for (Time off : run.attempt_offsets) {
        e.attempt_starts.push_back(run.start + off);
      }
      trace.execs.push_back(e);
      if (run.survived) trace.makespan = std::max(trace.makespan, run.end);
    }
    for (const TxTrace& tx : trace.txs) {
      if (!tx.is_condition) trace.makespan = std::max(trace.makespan, tx.finish);
    }
    std::sort(trace.reveals.begin(), trace.reveals.end(),
              [](const Reveal& a, const Reveal& b) { return a.at < b.at; });
    return trace;
  }

  [[nodiscard]] bool has_unemitted_frozen(
      const std::vector<bool>& emitted,
      const std::vector<CopyRun>& runs) const {
    for (int mi = 0; mi < app_.message_count(); ++mi) {
      if (!is_frozen_msg(MessageId{mi})) continue;
      if (!emitted[static_cast<std::size_t>(mi)]) return true;
    }
    (void)runs;
    return false;
  }

  /// Registers, in deterministic copy / fault-index order, every condition
  /// id the given scenario reveals (the same sequence a lazy registration
  /// inside simulate() would produce).
  void register_scenario_conditions(const FaultScenario& scenario) {
    for (const CopyInfo& ci : copies_) {
      const int faults = scenario.faults_on(ci.ref);
      const int r_cond = ci.checkpoints >= 1 ? ci.recoveries : 0;
      const bool survived = faults <= r_cond;
      const int last = survived ? std::min(faults + 1, r_cond) : r_cond + 1;
      for (int j = 1; j <= last; ++j) cond_id(ci, j);
    }
  }

  int cond_id(const CopyInfo& ci, int fault_index) {
    const int id = registry_.id(ci.ref, fault_index, ci.name);
    if (static_cast<std::size_t>(id) >= cond_copy_.size()) {
      cond_copy_.resize(static_cast<std::size_t>(id) + 1);
      cond_index_.resize(static_cast<std::size_t>(id) + 1, 0);
    }
    cond_copy_[static_cast<std::size_t>(id)] = ci.ref;
    cond_index_[static_cast<std::size_t>(id)] = fault_index;
    return id;
  }

  /// Read-only id lookup used during (possibly concurrent) simulation.
  [[nodiscard]] int cond_lookup(const CopyInfo& ci, int fault_index) const {
    const int id = registry_.find(ci.ref, fault_index);
    assert(id >= 0);  // registered by register_scenario_conditions
    return id;
  }

  // --------------------------------------------------------------- tables
  /// One prospective table activation extracted from one scenario trace.
  struct TableRecord {
    int node = -1;  ///< -1 = bus row
    std::string row;
    std::string label;
    Time start = 0;
    Guard guard;
  };

  [[nodiscard]] std::vector<TableRecord> trace_records(
      const ScenarioTrace& tr) const {
    auto guard_at = [&](Time t) {
      Guard g;
      for (const Reveal& r : tr.reveals) {
        if (r.at > t) break;
        g.add(Literal{r.cond_id, r.value});
      }
      return g;
    };
    std::vector<TableRecord> records;
    for (const ExecTrace& e : tr.execs) {
      const CopyInfo& ci = copies_[static_cast<std::size_t>(
          copy_at(e.copy.process.get(), e.copy.copy))];
      for (std::size_t a = 0; a < e.attempt_starts.size(); ++a) {
        const Time t = e.attempt_starts[a];
        records.push_back(TableRecord{ci.node.get(), ci.name,
                                      ci.name + "/" + std::to_string(a + 1),
                                      t, guard_at(t)});
      }
    }
    for (const TxTrace& tx : tr.txs) {
      if (tx.is_condition) {
        records.push_back(TableRecord{-1, registry_.label(tx.cond_id), "",
                                      tx.start, guard_at(tx.ready)});
      } else {
        const Message& m = app_.message(tx.msg);
        std::string label = m.name;
        if (tx.src_copy >= 0 && pa_.plan(m.src).copy_count() > 1) {
          label += "(" + std::to_string(tx.src_copy + 1) + ")";
        }
        records.push_back(
            TableRecord{-1, m.name, label, tx.start, guard_at(tx.ready)});
      }
    }
    return records;
  }

  void build_tables(CondScheduleResult& result) {
    ScheduleTables& tables = result.tables;
    tables.node_rows.assign(static_cast<std::size_t>(arch_.node_count()),
                            TableRows{});
    struct Agg {
      Guard guard;
      bool first = true;
    };
    // key: (node or -1 for bus, row, label, start)
    // lint: cold-path -- guard aggregation when emitting the final tables,
    // once per synthesized schedule; ordered keys double as the
    // deterministic row order of the exported tables
    std::map<std::tuple<int, std::string, std::string, Time>, Agg> agg;

    auto intersect = [](const Guard& a, const Guard& b) {
      Guard g;
      for (const Literal& lit : a.literals()) {
        if (b.contains(lit)) g.add(lit);
      }
      return g;
    };

    // Per-scenario record extraction is independent (pure reads of the
    // traces); the guard-intersecting fold below stays serial in scenario
    // order.
    std::vector<std::vector<TableRecord>> per_trace(result.traces.size());
    parallel_for(*pool_, result.traces.size(), threads_, [&](std::size_t i) {
      if (opts_.cancel && opts_.cancel->poll()) return;
      per_trace[i] = trace_records(result.traces[i]);
    });
    throw_if_cancelled();

    for (const std::vector<TableRecord>& records : per_trace) {
      for (const TableRecord& r : records) {
        auto key = std::make_tuple(r.node, r.row, r.label, r.start);
        auto [it, inserted] = agg.emplace(key, Agg{r.guard, false});
        if (!inserted) it->second.guard = intersect(it->second.guard, r.guard);
      }
    }

    for (auto& [key, a] : agg) {
      const auto& [node, row, label, start] = key;
      TableEntry entry{a.guard, start, label};
      if (node < 0) {
        tables.bus_rows[row].push_back(entry);
      } else {
        tables.node_rows[static_cast<std::size_t>(node)][row].push_back(entry);
      }
    }
    auto sort_rows = [](TableRows& rows) {
      for (auto& [name, entries] : rows) {
        std::sort(entries.begin(), entries.end(),
                  [](const TableEntry& x, const TableEntry& y) {
                    return x.start < y.start;
                  });
      }
    };
    for (TableRows& rows : tables.node_rows) sort_rows(rows);
    sort_rows(tables.bus_rows);
    tables.conds = registry_;
  }

  /// Joins the scenario workers' chunk-granular polls: any observed
  /// cancellation abandons the whole generation (partial tables are wrong,
  /// not partial results).
  void throw_if_cancelled() const {
    if (opts_.cancel && opts_.cancel->poll()) {
      throw CancelledError("conditional scheduling cancelled");
    }
  }

  const Application& app_;
  const Architecture& arch_;
  const PolicyAssignment& pa_;
  const FaultModel& fm_;
  const CondScheduleOptions& opts_;
  int threads_ = 1;
  ThreadPool* pool_ = nullptr;

  /// O(1) (process, copy) -> global copy index (prefix offsets).
  [[nodiscard]] int copy_at(std::int32_t pid, int copy) const {
    return first_copy_[static_cast<std::size_t>(pid)] + copy;
  }

  std::vector<CopyInfo> copies_;
  std::vector<int> first_copy_;
  std::vector<Time> copy_pins_;
  std::vector<Time> msg_pins_;
  CondRegistry registry_;
  std::vector<CopyRef> cond_copy_;
  std::vector<int> cond_index_;
};

}  // namespace

CondScheduleResult conditional_schedule(const Application& app,
                                        const Architecture& arch,
                                        const PolicyAssignment& assignment,
                                        const FaultModel& model,
                                        const CondScheduleOptions& options) {
  assignment.validate(app, model);
  CondSim sim(app, arch, assignment, model, options);
  return sim.run();
}

}  // namespace ftes
