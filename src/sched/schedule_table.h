// Quasi-static schedule tables (DATE'08 Section 5.2, Fig. 6).
//
// The output of the conditional scheduler is one table per computation node
// (plus the shared bus rows).  A table has one row per process / message /
// broadcast condition and one activation time per *condition conjunction*:
// the run-time scheduler on each node matches the already-known condition
// values against the column guards and fires the corresponding activation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/scenario.h"
#include "ftcpg/ftcpg.h"  // reuses Guard/Literal
#include "util/time_types.h"

namespace ftes {

/// Registry of condition literals used by schedule tables.  A condition
/// F_{Pi}^{j} is true iff the j-th fault hit the given copy of Pi.  The
/// registry assigns each (copy, j) a dense id usable in Guard literals.
class CondRegistry {
 public:
  /// Returns the id, registering on first use.  `name` is the producing
  /// process label (e.g. "P1" or "P1(2)").
  int id(CopyRef copy, int fault_index, const std::string& name);

  /// Id lookup without registration; -1 if unknown.
  [[nodiscard]] int find(CopyRef copy, int fault_index) const;

  [[nodiscard]] const std::string& label(int id) const;
  [[nodiscard]] CopyRef copy_of(int id) const;
  [[nodiscard]] int fault_index_of(int id) const;
  [[nodiscard]] int size() const { return static_cast<int>(labels_.size()); }

  /// "F_P1^1 & !F_P2^1" style rendering of a guard; "true" when empty.
  [[nodiscard]] std::string render(const Guard& guard) const;

 private:
  // lint: cold-path -- condition-id interning while tables are built; the
  // move-evaluation loop never touches ScheduleTables
  std::map<std::pair<std::pair<std::int32_t, int>, int>, int> ids_;
  std::vector<std::string> labels_;
  std::vector<CopyRef> copies_;
  std::vector<int> fault_indices_;
};

/// One activation: fires at `start` when the run-time scheduler knows the
/// guard to hold.  `label` identifies the concrete execution (e.g. the
/// second re-execution attempt "P1/3").
struct TableEntry {
  Guard guard;
  Time start = 0;
  std::string label;
};

/// Rows keyed by row name ("P1", "m2", "F_P1^1"), values sorted by start.
// lint: cold-path -- final exported table rows, built once per schedule;
// the ordered keys are what makes table printing/diffing deterministic
using TableRows = std::map<std::string, std::vector<TableEntry>>;

struct ScheduleTables {
  std::vector<TableRows> node_rows;  ///< indexed by NodeId
  TableRows bus_rows;                ///< messages + condition broadcasts
  CondRegistry conds;

  /// Worst-case completion over all scenarios (the schedule's WCSL).
  Time wcsl = 0;
  /// Fault scenarios covered (including the fault-free one).
  int scenario_count = 0;

  /// Total number of (row, entry) activations -- the paper's "size of the
  /// schedule tables" cost metric for transparency trade-offs.
  [[nodiscard]] int total_entries() const;

  /// Fig. 6-style text rendering.
  [[nodiscard]] std::string to_text(const Architecture& arch) const;
};

}  // namespace ftes
