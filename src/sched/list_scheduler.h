// Fault-free static cyclic list scheduler (substrate of [7, 8], used by the
// design-space exploration of Section 6).
//
// Schedules every copy of every process of a mapped policy assignment on its
// node, plus every cross-node message on the TDMA bus, using partial
// critical path priorities.  Durations are the *fault-free* fault-tolerant
// execution times (E(n,0) = C + n*chi for checkpointed copies, C for
// replicas); the worst-case analysis under k faults is layered on top by
// wcsl.h.  The same scheduler with a trivial one-copy no-overhead
// assignment produces the non-fault-tolerant baseline schedule used in the
// paper's FTO metric.
//
// Incremental scheduling.  The optimizers evaluate thousands of candidate
// assignments per run, each differing from an incumbent in a single process
// plan.  A full build can therefore record a ScheduleCheckpointLog --
// per-vertex readiness/placement event indices plus full scheduler-state
// snapshots at a fixed event interval (O(sqrt(E)) by default) -- and
// list_schedule_resume() replays a candidate from the last snapshot that
// provably precedes any placement the move can affect.  The resumed
// schedule is bit-identical to a from-scratch build by construction: the
// prefix before the resume point is proven unaffected (readiness of the
// moved process's copies, priority-rank diffs, and local<->bus flips of its
// inbound messages all bound the resume point), and the suffix is replayed
// with the candidate's own data.  See docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/policy.h"
#include "fault/scenario.h"
#include "util/snapshot_store.h"
#include "util/time_types.h"

namespace ftes {

/// One scheduled execution block (a copy runs as one block; its inline
/// recoveries extend it only in faulty scenarios).
struct ScheduledCopy {
  CopyRef ref;
  NodeId node;
  Time start = 0;
  Time finish = 0;  ///< fault-free finish
};

/// One scheduled TDMA transmission: message `msg` sent by copy `src_copy`
/// of the producer.
struct ScheduledMessage {
  MessageId msg;
  int src_copy = 0;
  NodeId sender;
  Time ready = 0;   ///< producer's fault-free finish
  Time start = 0;   ///< begin of first TDMA slot used
  Time finish = 0;  ///< end of last slot used
};

struct ListSchedule {
  /// Indexed by copy vertex id: vertex of copy j of process p is
  /// `first_copy[p] + j` (copies of one process are contiguous).
  std::vector<ScheduledCopy> copies;
  std::vector<ScheduledMessage> messages;  ///< in bus commit order
  /// Static order per node: indices into `copies`, ascending start.
  std::vector<std::vector<int>> node_order;
  /// Static bus order: indices into `messages`, ascending start.
  std::vector<int> bus_order;
  Time makespan = 0;
  /// Per-process prefix offsets into `copies` (size process_count + 1).
  std::vector<int> first_copy;

  /// Index into `copies` for a given copy; -1 if absent.  O(1) via the
  /// prefix offsets (the scheduler places copies in vertex-id order).
  [[nodiscard]] int copy_index(CopyRef ref) const;
  /// Fault-free finish time of the latest copy of a process.
  [[nodiscard]] Time process_finish(ProcessId p) const;
};

/// Ready-queue entry: an unplaced copy vertex whose dependencies are all
/// delivered.  Ordered by (earliest start, priority rank descending, vertex
/// id) -- exactly the tie-breaking of the historical linear ready-scan.
/// Keys are refreshed lazily: a vertex's true start only grows (node-free
/// and data-ready times are monotone), so an entry whose key still matches
/// its recomputed start is the global minimum.
struct ReadyEntry {
  Time start = 0;
  Time rank = 0;
  int vertex = -1;
};

/// Pending-transmission entry, ordered by (ready, message id, enqueue
/// sequence) -- the historical FIFO-in-ready-order bus policy.
struct TxEntry {
  Time ready = 0;
  std::int32_t msg = -1;
  int seq = 0;
  int src_copy = 0;
  NodeId sender;
};

/// Snapshot-resident ready-queue entry.  Deliberately *rank-free*: ranks
/// are a pure function of the assignment (re-stamped from the restoring
/// run's own rank vector), while everything else in a snapshot taken
/// before a move's first affected event is move-invariant.  Dropping the
/// rank makes such prefix snapshots bit-identical between a base and any
/// candidate with the same copy layout -- which is what lets a
/// record-while-resuming run share them by reference instead of copying
/// (see ScheduleCheckpointLog::snapshots).
struct SnapshotReadyEntry {
  Time start = 0;
  int vertex = -1;
};

/// Full scheduler state between two placement events, restorable into a
/// resumed run (possibly with the moved process's vertex ids remapped).
///
/// Snapshots are *canonical*: the heap images are re-keyed to their true
/// start at snapshot time and sorted by (start, vertex) / the tx queue
/// order, so a snapshot is a pure function of the scheduler's semantic
/// state -- two runs that placed the same prefix record bit-identical
/// snapshots, regardless of their internal heap layout or lazy-key
/// refresh history.  (This is what lets a resumed run record a log
/// bit-identical to a from-scratch build's; see list_schedule_resume's
/// `record` parameter.)  Once inside a log a snapshot is immutable and
/// may be co-owned by any number of derived logs.
struct ScheduleSnapshot {
  std::size_t event_index = 0;  ///< events committed before this state
  std::size_t remaining = 0;    ///< copies still unplaced
  Time bus_free = 0;
  int tx_seq = 0;
  std::vector<Time> node_free;
  std::vector<char> placed;
  std::vector<int> deps_left;
  std::vector<Time> data_ready;
  /// Ready image sorted by (start, vertex); rank-free, see above.
  std::vector<SnapshotReadyEntry> ready_heap;
  std::vector<TxEntry> tx_heap;
  ListSchedule partial;  ///< copies/messages committed so far
};

/// Deterministic byte size of one snapshot's storage (the struct plus
/// every owned vector payload) -- the unit of the snapshot_bytes_copied
/// counters, so "bytes a rebase materialized" is a pure function of the
/// schedule and never of allocator or capacity accidents.
[[nodiscard]] std::size_t snapshot_bytes(const ScheduleSnapshot& s);

/// Checkpoint log of one full build: snapshots plus the per-vertex event
/// indices and priority ranks needed to bound a move's first affected
/// placement.  An "event" is one committed copy or one committed bus
/// transmission; a build has copies + transmissions events in total.
struct ScheduleCheckpointLog {
  int snapshot_interval = 0;    ///< events between snapshots (>= 1)
  std::size_t event_count = 0;  ///< total events of the base build
  /// Immutable snapshots at events 0, I, 2I, ... -- copy-on-write: a log
  /// recorded while resuming *shares* the base log's prefix snapshots by
  /// reference (they are bit-identical by construction when the copy
  /// layout is unchanged) and only materializes snapshots at/after the
  /// resume point.  Copying a log copies refs, never snapshot bytes.
  SnapshotStore<ScheduleSnapshot> snapshots;
  /// Per copy vertex: first event index whose selection could consider the
  /// vertex (its dependencies completed strictly before that event).
  std::vector<std::size_t> avail_event;
  /// Per copy vertex: index of the event that placed it.
  std::vector<std::size_t> placed_event;

  /// One start-time tie of the ready queue: the selection fell back to the
  /// priority ranks.  Ranks decide *only* such ties, so a move that changes
  /// ranks (every ancestor of the moved process, typically) invalidates the
  /// schedule prefix no earlier than the first recorded tie whose winner
  /// changes when re-judged with the candidate's ranks.
  struct StartTie {
    std::size_t event = 0;
    int winner = -1;  ///< the base build's pick
    /// Every vertex at the tied start (incl. winner), ascending by vertex
    /// id -- a pure function of the tied state, NOT heap pop order (pop
    /// order depends on ranks, which a resumed run re-records under the
    /// candidate's ranks).
    std::vector<int> contenders;
  };
  std::vector<StartTie> ties;  ///< ascending by event

  /// Per copy vertex: partial critical path priority of the base build.
  std::vector<Time> rank;
};

/// Counters of one resumed (or attempted-resume) build.
struct ListScheduleResumeStats {
  bool resumed = false;             ///< a snapshot past event 0 was used
  std::size_t events_total = 0;     ///< events of the candidate build
  std::size_t events_resumed = 0;   ///< prefix events served by the snapshot
  std::size_t events_replayed = 0;  ///< events actually executed
  std::size_t heap_pops = 0;        ///< ready/tx heap pops during replay
  // Record-while-resuming snapshot accounting (zero without `record`):
  // prefix snapshots transplanted by reference vs materialized by value,
  // and the bytes every materialized snapshot cost (remapped prefix
  // copies plus snapshots recorded live during the replayed suffix).
  std::size_t snapshots_shared = 0;
  std::size_t snapshots_copied = 0;
  std::size_t snapshot_bytes_copied = 0;
  /// Bytes of the shared prefix snapshots -- what a deep-copying record
  /// would have paid on top of snapshot_bytes_copied.
  std::size_t snapshot_bytes_shared = 0;
};

/// Computes the fault-free list schedule.  `assignment` must be fully
/// mapped; it is validated against `model` (pass k = 0 via a permissive
/// model when scheduling non-FT baselines).
[[nodiscard]] ListSchedule list_schedule(const Application& app,
                                         const Architecture& arch,
                                         const PolicyAssignment& assignment);

/// Same full build, additionally recording `log` for later resumes.
/// `snapshot_interval` <= 0 picks round(sqrt(total events)).
[[nodiscard]] ListSchedule list_schedule(const Application& app,
                                         const Architecture& arch,
                                         const PolicyAssignment& assignment,
                                         ScheduleCheckpointLog& log,
                                         int snapshot_interval = 0);

/// The snapshot interval a default full build of `assignment` would pick:
/// round(sqrt(total events)), where an event is one copy placement or one
/// bus transmission.  Lets a caller predict -- without building anything --
/// whether a record-while-resuming run (which inherits the base log's
/// interval) would produce the same log a default from-scratch rebuild
/// would.
[[nodiscard]] int default_snapshot_interval(const Application& app,
                                            const PolicyAssignment& assignment);

/// Schedule of `candidate` (== `base` with process `moved`'s plan replaced),
/// resumed from the nearest safe snapshot of `log` (recorded from `base`).
/// Bit-identical to list_schedule(app, arch, candidate); falls back to a
/// from-scratch build when no snapshot precedes the first affected event.
///
/// Record-while-resuming: when `record` is non-null, the run additionally
/// emits a complete checkpoint log for the *candidate* -- the replayed
/// suffix records its events, ties and snapshots live, and the skipped
/// prefix is transplanted from `log` (event indices and tie groups are
/// move-invariant before the resume point).  Prefix snapshots are
/// copy-on-write: when every moved process keeps its copy count they are
/// *shared by reference* (bit-identical by construction -- snapshots are
/// canonical and rank-free), otherwise they are materialized remapped
/// into the candidate's vertex space; either way the recorded log
/// inherits `log`'s snapshot interval (so prefix snapshots stay aligned)
/// and is bit-identical to the log of
/// `list_schedule(app, arch, candidate, *record, log.snapshot_interval)`
/// -- an accepted move's rebase gets a resumable log while copying only
/// the changed suffix.  `record` must not alias `log` (the transplant
/// reads `log`'s snapshots while writing `record`); record into a fresh
/// log and move it over the old one afterwards.
[[nodiscard]] ListSchedule list_schedule_resume(
    const Application& app, const Architecture& arch,
    const PolicyAssignment& base, const ScheduleCheckpointLog& log,
    const PolicyAssignment& candidate, ProcessId moved,
    ListScheduleResumeStats* stats = nullptr,
    ScheduleCheckpointLog* record = nullptr);

/// Multi-move resume: `candidate` is `base` with the plans of every
/// process in `moved` replaced (a batch of accepted moves diffed against
/// a retained grand-base log).  The resume point is bounded by the
/// earliest first-affected event over the whole set; everything else --
/// bit-identity, record-while-resuming, snapshot sharing -- behaves as in
/// the single-move overload (which forwards here).  `moved` may name
/// processes whose plan is in fact unchanged (treated conservatively) and
/// may be empty (candidate == base: resumes from the last snapshot).
[[nodiscard]] ListSchedule list_schedule_resume(
    const Application& app, const Architecture& arch,
    const PolicyAssignment& base, const ScheduleCheckpointLog& log,
    const PolicyAssignment& candidate, const std::vector<ProcessId>& moved,
    ListScheduleResumeStats* stats = nullptr,
    ScheduleCheckpointLog* record = nullptr);

/// Fault-free duration of one copy under its plan (E(n,0) or C).
[[nodiscard]] Time fault_free_duration(const Application& app,
                                       const CopyPlan& copy, ProcessId pid);

/// Convenience: the non-fault-tolerant baseline assignment -- one copy per
/// process, no checkpoints/recoveries, mapped as `reference` maps copy 0.
/// Its list schedule's makespan is the denominator of the paper's fault
/// tolerance overhead (FTO) metric.
[[nodiscard]] PolicyAssignment strip_fault_tolerance(
    const Application& app, const PolicyAssignment& reference);

}  // namespace ftes
