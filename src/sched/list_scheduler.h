// Fault-free static cyclic list scheduler (substrate of [7, 8], used by the
// design-space exploration of Section 6).
//
// Schedules every copy of every process of a mapped policy assignment on its
// node, plus every cross-node message on the TDMA bus, using partial
// critical path priorities.  Durations are the *fault-free* fault-tolerant
// execution times (E(n,0) = C + n*chi for checkpointed copies, C for
// replicas); the worst-case analysis under k faults is layered on top by
// wcsl.h.  The same scheduler with a trivial one-copy no-overhead
// assignment produces the non-fault-tolerant baseline schedule used in the
// paper's FTO metric.
#pragma once

#include <unordered_map>
#include <vector>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/policy.h"
#include "fault/scenario.h"
#include "util/time_types.h"

namespace ftes {

/// One scheduled execution block (a copy runs as one block; its inline
/// recoveries extend it only in faulty scenarios).
struct ScheduledCopy {
  CopyRef ref;
  NodeId node;
  Time start = 0;
  Time finish = 0;  ///< fault-free finish
};

/// One scheduled TDMA transmission: message `msg` sent by copy `src_copy`
/// of the producer.
struct ScheduledMessage {
  MessageId msg;
  int src_copy = 0;
  NodeId sender;
  Time ready = 0;   ///< producer's fault-free finish
  Time start = 0;   ///< begin of first TDMA slot used
  Time finish = 0;  ///< end of last slot used
};

struct ListSchedule {
  std::vector<ScheduledCopy> copies;
  std::vector<ScheduledMessage> messages;
  /// Static order per node: indices into `copies`, ascending start.
  std::vector<std::vector<int>> node_order;
  /// Static bus order: indices into `messages`, ascending start.
  std::vector<int> bus_order;
  Time makespan = 0;

  /// Index into `copies` for a given copy; -1 if absent.
  [[nodiscard]] int copy_index(CopyRef ref) const;
  /// Fault-free finish time of the latest copy of a process.
  [[nodiscard]] Time process_finish(ProcessId p) const;

  std::unordered_map<ProcessId, std::vector<int>> copies_by_process;
};

/// Computes the fault-free list schedule.  `assignment` must be fully
/// mapped; it is validated against `model` (pass k = 0 via a permissive
/// model when scheduling non-FT baselines).
[[nodiscard]] ListSchedule list_schedule(const Application& app,
                                         const Architecture& arch,
                                         const PolicyAssignment& assignment);

/// Fault-free duration of one copy under its plan (E(n,0) or C).
[[nodiscard]] Time fault_free_duration(const Application& app,
                                       const CopyPlan& copy, ProcessId pid);

/// Convenience: the non-fault-tolerant baseline assignment -- one copy per
/// process, no checkpoints/recoveries, mapped as `reference` maps copy 0.
/// Its list schedule's makespan is the denominator of the paper's fault
/// tolerance overhead (FTO) metric.
[[nodiscard]] PolicyAssignment strip_fault_tolerance(
    const Application& app, const PolicyAssignment& reference);

}  // namespace ftes
