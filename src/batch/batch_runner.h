// Parallel batch synthesis: evaluate many independent problems at once.
//
// The paper's experiments (Section 6, Figs. 7-8) sweep hundreds of
// generated instances, and the north-star workload is "many scenarios, as
// fast as the hardware allows".  Each synthesis is independent, so the
// batch runner fans the tasks over util/thread_pool.h and collects ordered
// results.
//
// Determinism: task i always synthesizes with seed
// derive_task_seed(base_seed, i) regardless of thread count or completion
// order, and results are returned in task order -- a batch run with
// --threads 8 is bit-identical to --threads 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/synthesis.h"
#include "io/app_parser.h"

namespace ftes {

/// One unit of work: a named problem in the .ftes text format
/// (io/app_parser.h).  Parsing happens inside run_batch, on the worker, so
/// a malformed file fails its own task instead of the whole batch.
struct BatchTask {
  std::string name;  ///< label in the report (e.g. the .ftes path)
  std::string text;  ///< problem description, .ftes format
};

class ThreadPool;

struct BatchOptions {
  /// Concurrent tasks (1 = serial; 0 = all hardware threads).
  int threads = 1;
  /// Pool supplying the helper threads; nullptr = ThreadPool::shared().
  /// Mainly for tests, which need a multi-worker pool even on single-core
  /// machines (where the shared pool has no workers).
  ThreadPool* pool = nullptr;
  /// Template synthesis options; the fault model comes from each task's
  /// problem file and the optimizer seed from derive_task_seed.
  SynthesisOptions synthesis;
  std::uint64_t base_seed = 1;
  /// Adversarial fuzz pass (sim/fuzzer.h) after each successful synthesis:
  /// fuzz_trials random admissible perturbations replayed against the
  /// task's schedule tables (requires synthesis.build_schedule_tables).
  /// The result is appended as a "fuzz" pseudo-stage to the task's stage
  /// metrics.  Trials run serially inside the task -- the batch already
  /// fans out across tasks -- with per-trial seeds derived from fuzz_seed,
  /// so reports stay bit-identical for every thread count.
  int fuzz_trials = 0;
  std::uint64_t fuzz_seed = 1;
};

struct BatchTaskResult {
  std::string name;
  bool ok = false;          ///< synthesis ran (parse/model errors -> false)
  std::string error;        ///< failure reason when !ok
  bool schedulable = false;
  /// The task's deadline watchdog fired (options.synthesis budgets): the
  /// fields below describe the well-formed partial state at cancellation.
  /// A timed-out task still counts as ok -- the sweep continues.
  bool timed_out = false;
  Time wcsl = 0;
  Time deadline = 0;
  int evaluations = 0;
  std::uint64_t seed = 0;   ///< the derived per-task seed actually used
  double seconds = 0.0;     ///< wall-clock of this task
  /// Per-stage pipeline metrics of this task's synthesis (empty when the
  /// task failed before the pipeline ran).
  std::vector<StageMetrics> stages;
};

struct BatchReport {
  std::vector<BatchTaskResult> results;  ///< in task order
  int schedulable_count = 0;
  int failed_count = 0;                  ///< tasks with !ok
  int timed_out_count = 0;               ///< tasks cut short by a budget
  double seconds = 0.0;                  ///< wall-clock of the whole batch
};

/// SplitMix64 mix of the batch seed and the task index: decorrelated
/// per-task streams that depend only on (base_seed, index), never on
/// scheduling.
[[nodiscard]] std::uint64_t derive_task_seed(std::uint64_t base_seed,
                                             std::size_t index);

/// Synthesizes every task, `options.threads` at a time.
[[nodiscard]] BatchReport run_batch(const std::vector<BatchTask>& tasks,
                                    const BatchOptions& options);

/// Loads every *.ftes file under `dir` (sorted by path for stable task
/// indices).  A missing/unreadable directory throws std::runtime_error;
/// unparsable files surface later as failed tasks in the report.
[[nodiscard]] std::vector<BatchTask> load_batch_dir(const std::string& dir);

/// Human-readable table of a batch report (one line per task + summary).
[[nodiscard]] std::string format_batch_report(const BatchReport& report);

/// Machine-readable JSON report (per-task seed, schedulable flag, WCSL,
/// evaluations, wall-clock and per-stage metrics; schema in docs/CLI.md).
[[nodiscard]] std::string format_batch_report_json(const BatchReport& report);

}  // namespace ftes
