#include "batch/batch_runner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/fuzzer.h"
#include "util/json_io.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftes {

namespace {

BatchTaskResult run_one(const BatchTask& task, const BatchOptions& options,
                        std::uint64_t seed) {
  const Stopwatch watch;
  BatchTaskResult r;
  r.name = task.name;
  r.seed = seed;
  try {
    ParsedProblem problem = parse_problem_string(task.text);
    SynthesisOptions synth = options.synthesis;
    synth.fault_model = problem.model;
    synth.optimize.seed = seed;
    // Run the pipeline directly (rather than through synthesize()) to keep
    // the per-stage metrics for the machine-readable report.
    SynthesisContext ctx(problem.app, problem.arch, synth);
    Pipeline pipeline = Pipeline::default_pipeline();
    const SynthesisResult result = pipeline.run(ctx);
    r.ok = true;
    r.schedulable = result.schedulable;
    r.timed_out = result.timed_out;
    r.wcsl = result.wcsl.makespan;
    r.deadline = problem.app.deadline();
    r.evaluations = result.evaluations;
    r.stages = pipeline.metrics();
    if (options.fuzz_trials > 0 && result.schedule &&
        !result.schedule->traces.empty()) {
      const Stopwatch fuzz_watch;
      const ScheduleFuzzer fuzzer(problem.app, problem.arch,
                                  result.assignment, problem.model,
                                  *result.schedule);
      FuzzOptions fuzz;
      fuzz.trials = options.fuzz_trials;
      fuzz.seed = options.fuzz_seed;
      fuzz.threads = 1;  // the batch already fans out across tasks
      const FuzzReport fr = fuzzer.fuzz(fuzz);
      StageMetrics fm;
      fm.stage = "fuzz";
      fm.fuzz_trials = fr.trials;
      fm.fuzz_failing_trials = fr.failing_trials;
      fm.fuzz_violations = fr.violations;
      fm.fuzz_worst_completion = fr.worst_completion;
      fm.seconds = fuzz_watch.seconds();
      r.stages.push_back(std::move(fm));
    }
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  } catch (...) {
    // The task boundary must be exhaustive: a non-standard exception from
    // one malformed problem would otherwise propagate through
    // parallel_for's rethrow and kill the whole sweep.
    r.ok = false;
    r.error = "unknown non-standard exception";
  }
  r.seconds = watch.seconds();
  return r;
}

}  // namespace

std::uint64_t derive_task_seed(std::uint64_t base_seed, std::size_t index) {
  return derive_stream_seed(base_seed,
                            static_cast<std::uint64_t>(index));
}

BatchReport run_batch(const std::vector<BatchTask>& tasks,
                      const BatchOptions& options) {
  const Stopwatch watch;
  BatchReport report;
  report.results.resize(tasks.size());

  const int threads = resolve_threads(options.threads);
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  // lint: cancel-ok -- each task arms its own per-job token from the
  // synthesis budgets inside run_one; there is no batch-level token to
  // poll, and a pre-dispatch poll would make the set of completed tasks
  // timing-dependent instead of "all tasks, each individually budgeted"
  parallel_for(pool, tasks.size(), threads, [&](std::size_t i) {
    report.results[i] =
        run_one(tasks[i], options, derive_task_seed(options.base_seed, i));
  });

  for (const BatchTaskResult& r : report.results) {
    if (!r.ok) {
      ++report.failed_count;
    } else if (r.schedulable) {
      ++report.schedulable_count;
    }
    if (r.timed_out) ++report.timed_out_count;
  }
  report.seconds = watch.seconds();
  return report;
}

std::vector<BatchTask> load_batch_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw std::runtime_error("batch: '" + dir + "' is not a directory");
  }
  std::vector<fs::path> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".ftes") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<BatchTask> tasks;
  tasks.reserve(paths.size());
  for (const fs::path& p : paths) {
    std::ifstream in(p);
    if (!in) throw std::runtime_error("batch: cannot read '" + p.string() + "'");
    std::ostringstream text;
    text << in.rdbuf();
    tasks.push_back(BatchTask{p.string(), text.str()});
  }
  return tasks;
}

std::string format_batch_report(const BatchReport& report) {
  std::ostringstream out;
  std::size_t width = 4;
  for (const BatchTaskResult& r : report.results) {
    width = std::max(width, r.name.size());
  }
  for (const BatchTaskResult& r : report.results) {
    out << "  " << r.name << std::string(width - r.name.size() + 2, ' ');
    if (!r.ok) {
      out << "ERROR: " << r.error << "\n";
      continue;
    }
    out << "wcsl " << r.wcsl << " / deadline " << r.deadline << "  "
        << (r.schedulable ? "schedulable" : "NOT schedulable")
        << (r.timed_out ? "  TIMEOUT" : "") << "  (" << r.evaluations
        << " evals, seed " << r.seed << ")\n";
  }
  out << "  -- " << report.results.size() << " tasks, "
      << report.schedulable_count << " schedulable, " << report.failed_count
      << " failed";
  if (report.timed_out_count > 0) {
    out << ", " << report.timed_out_count << " timed out";
  }
  out << "\n";
  return out.str();
}

std::string format_batch_report_json(const BatchReport& report) {
  std::ostringstream out;
  out << "{\n  \"tasks\": [\n";
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const BatchTaskResult& r = report.results[i];
    out << "    {\"name\": ";
    json_escape(out, r.name);
    out << ", \"seed\": " << r.seed
        << ", \"ok\": " << (r.ok ? "true" : "false");
    if (!r.ok) {
      out << ", \"error\": ";
      json_escape(out, r.error);
    }
    out << ", \"schedulable\": " << (r.schedulable ? "true" : "false")
        << ", \"timed_out\": " << (r.timed_out ? "true" : "false")
        << ", \"wcsl\": " << r.wcsl << ", \"deadline\": " << r.deadline
        << ", \"evaluations\": " << r.evaluations << ", \"seconds\": ";
    json_seconds(out, r.seconds);
    out << ", \"stages\": " << metrics_to_json(r.stages) << "}";
    if (i + 1 < report.results.size()) out << ",";
    out << "\n";
  }
  out << "  ],\n  \"task_count\": " << report.results.size()
      << ",\n  \"schedulable_count\": " << report.schedulable_count
      << ",\n  \"failed_count\": " << report.failed_count
      << ",\n  \"timed_out_count\": " << report.timed_out_count
      << ",\n  \"seconds\": ";
  json_seconds(out, report.seconds);
  out << "\n}\n";
  return out.str();
}

}  // namespace ftes
