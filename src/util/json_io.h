// Tiny shared JSON-writing helpers for the hand-rolled emitters
// (core/pipeline.cpp, batch/batch_runner.cpp, sched/table_export.cpp).
// Strings are escaped per RFC 8259: quote, backslash, and all control
// characters below 0x20 (named escapes for the common ones, \u00XX for
// the rest) — task names and exception messages must never produce
// output a strict parser rejects.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace ftes {

inline void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Fixed 6-decimal rendering for wall-clock seconds (stable field shape;
/// no scientific notation for tiny durations).
inline void json_seconds(std::ostringstream& out, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", seconds);
  out << buf;
}

}  // namespace ftes
