// Copy-on-write snapshot storage: an append-only sequence of immutable,
// refcounted snapshots with structural sharing between stores.
//
// The incremental list scheduler checkpoints full scheduler-state
// snapshots every ~sqrt(E) events (sched/list_scheduler.h).  A
// record-while-resuming run produces a complete log for a *candidate*
// whose prefix -- every snapshot before the resume point -- is provably
// bit-identical to the base log's.  Deep-copying that prefix made every
// accepted-move rebase O(E) in bytes regardless of how little actually
// changed; sharing it by reference makes a rebase O(changed suffix).
//
// A SnapshotStore therefore holds `shared_ptr<const T>`s: append()
// materializes a new snapshot (the only place bytes are copied), while
// share() adopts another store's snapshot by reference.  Snapshots are
// immutable from the moment they enter a store, so sharing is safe across
// any number of derived logs -- and across threads: the parallel
// neighborhood evaluation reads base snapshots from pool workers while
// the serial accept step records derived logs that alias them.  Dropping
// a store (or overwriting a log) releases only the refcounts; a snapshot
// dies with its last owner.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace ftes {

template <class T>
class SnapshotStore {
 public:
  using Ref = std::shared_ptr<const T>;

  /// Materializes a snapshot into the store (the copy/allocation cost
  /// lives here and nowhere else).  Returns the stored ref so a caller
  /// can immediately share it onward.
  const Ref& append(T&& value) {
    refs_.push_back(std::make_shared<const T>(std::move(value)));
    return refs_.back();
  }

  /// Adopts an existing snapshot by reference -- structural sharing, no
  /// bytes copied.  The snapshot is co-owned by every store holding it.
  void share(Ref ref) { refs_.push_back(std::move(ref)); }

  void clear() noexcept { refs_.clear(); }
  [[nodiscard]] bool empty() const noexcept { return refs_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return refs_.size(); }

  /// The snapshot at position i (always non-null for stored positions).
  const T& operator[](std::size_t i) const { return *refs_[i]; }
  [[nodiscard]] const Ref& ref(std::size_t i) const { return refs_[i]; }

  /// True when position i aliases the same underlying snapshot as
  /// `other`'s position j -- identity, not equality (aliasing tests).
  [[nodiscard]] bool aliases(std::size_t i, const SnapshotStore& other,
                             std::size_t j) const {
    return refs_[i] == other.refs_[j];
  }

  // Iteration yields refs; dereference to reach the snapshot.
  [[nodiscard]] auto begin() const noexcept { return refs_.begin(); }
  [[nodiscard]] auto end() const noexcept { return refs_.end(); }
  [[nodiscard]] auto rbegin() const noexcept { return refs_.rbegin(); }
  [[nodiscard]] auto rend() const noexcept { return refs_.rend(); }

 private:
  std::vector<Ref> refs_;
};

}  // namespace ftes
