// Deterministic fault-injection seam (the server-robustness analogue of
// sim/fuzzer.h: instead of perturbing the synthesized schedules, it
// perturbs the toolchain itself).
//
// A small set of named sites is compiled into the hot paths of the
// parser, the pipeline's stage loop, the result cache and the thread
// pool via FTES_FAULT_POINT("site").  At runtime the seam is a single
// relaxed atomic load and costs nothing until a test or `ftes_cli
// --inject` arms it with rules of the form
//
//     site:kind[:every=N][:offset=N][:limit=N]
//
// where kind is `throw` (InjectedFault, a non-deterministic internal
// error), `bad-alloc` (std::bad_alloc, memory pressure) or `cancel`
// (CancelledError, a cancellation storm).  A rule fires on the site's
// hit number H (0-based, counted per site) whenever H % every == offset,
// at most `limit` times (0 = unlimited).  The schedule is a pure
// function of the per-site hit counters -- no clocks, no global RNG --
// so a single-threaded replay of the same request stream injects the
// same faults at the same points.
//
// Job-scoped determinism: with concurrent in-flight jobs (`--serve-jobs
// N`) the *global* per-site counters would interleave nondeterministically
// across jobs.  A thread installs a JobScope(job_index) around one job's
// work; while it is active, the schedule key for a hit becomes
// `job_index + per-site hit number within this scope` and `limit` is
// charged per scope, so whether a given hit fires depends only on the
// job's index in the request stream and the job's own execution trace --
// never on how jobs overlap.  Global SiteStats still aggregate every hit
// and fire (the sums are interleaving-independent).  Threads without a
// scope (unit tests, parallel_for helpers inside a job) keep the global
// counter schedule.
//
// Defining FTES_FI_DISABLED (CMake option FTES_FAULT_INJECTION=OFF)
// compiles every seam to `((void)0)`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ftes::fi {

/// The exception `throw`-kind rules raise: a stand-in for any unexpected
/// internal failure.  Distinct from std::invalid_argument (deterministic
/// input errors) so callers can classify it as transient.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind { kThrow, kBadAlloc, kCancel };

struct FaultRule {
  std::string site;
  FaultKind kind = FaultKind::kThrow;
  std::uint64_t every = 1;   ///< fire when hit_number % every == offset
  std::uint64_t offset = 0;
  std::uint64_t limit = 0;   ///< max fires for this rule; 0 = unlimited
};

/// Per-site counters: how often the site was reached and how often some
/// rule fired there.  Soak tests assert fired > 0 for every armed class.
struct SiteStats {
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

/// Parses "site:kind[:every=N][:offset=N][:limit=N]".  Throws
/// std::invalid_argument with a usable message on malformed specs.
[[nodiscard]] FaultRule parse_rule(const std::string& spec);

/// Arms the seam with `rules` (replacing any previous set) and resets all
/// counters.  An empty vector disarms.
void configure(std::vector<FaultRule> rules);

/// Disarms the seam and clears rules and counters.
void disarm();

/// Snapshot of the per-site counters, keyed by site name (ordered, so
/// emission order is deterministic).  Sites are counted only while armed.
[[nodiscard]] std::map<std::string, SiteStats> stats();

/// True while at least one rule is armed (relaxed load: the fast path).
[[nodiscard]] bool armed() noexcept;

/// Slow path of FTES_FAULT_POINT: counts the hit and throws if a rule
/// matches.  Call through hit() / the macro, not directly.
void hit_armed(const char* site);

inline void hit(const char* site) {
  if (armed()) hit_armed(site);
}

/// RAII per-job determinism scope (see the header comment).  While alive
/// on a thread, hits on that thread match rules against
/// `job_index + local per-site hit number` instead of the global per-site
/// counter, and rule limits are charged per scope.  Scopes may nest
/// (restores the previous scope on destruction); they are thread-local,
/// so a scope does not cover parallel_for helper threads spawned inside
/// the job.
class JobScope {
 public:
  explicit JobScope(std::uint64_t job_index);
  ~JobScope();

  JobScope(const JobScope&) = delete;
  JobScope& operator=(const JobScope&) = delete;

 private:
  friend void hit_armed(const char* site);

  JobScope* prev_;
  std::uint64_t job_index_;
  std::map<std::string, std::uint64_t> local_hits_;  ///< per-site, this job
  std::map<std::size_t, std::uint64_t> rule_fired_;  ///< per rule index
};

}  // namespace ftes::fi

#ifdef FTES_FI_DISABLED
#define FTES_FAULT_POINT(site) ((void)0)
#else
#define FTES_FAULT_POINT(site) (::ftes::fi::hit(site))
#endif
