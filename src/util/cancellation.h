// Cooperative cancellation with an optional deadline watchdog.
//
// One CancellationToken is shared by everything a synthesis run spawns: the
// pipeline, the optimizers' parallel_for chunk bodies, the conditional
// scheduler's per-scenario simulations, and any speculative background
// tasks.  Cancellation has two sources:
//
//   * request_cancel() -- an external caller (a UI, a batch supervisor, a
//     watchdog *thread* in tests) flips the flag directly; and
//   * armed wall-clock budgets -- poll() compares steady_clock against the
//     per-stage and total deadlines and flips the flag itself on expiry.
//     This is the *cooperative* watchdog path: no extra thread exists, the
//     workers polling at their cancellation points are the watchdog.  The
//     cancel latency is therefore bounded by one chunk of work between
//     polls -- one candidate evaluation, one scenario simulation, or a
//     speculative task's single full WCSL evaluation (the one chunk with
//     no interior cancellation point).
//
// Tokens chain: a child token (e.g. a speculative table-generation task)
// observes its parent's *flag*, so cancelling the run cancels the
// speculation, while discarding the speculation (cancelling the child)
// leaves the run alive.  A child deliberately does NOT evaluate the
// parent's armed deadlines: deadlines are enforced only by the threads
// the pipeline owns, so a background task can never flip a stage budget
// in the window between a stage completing under budget and the pipeline
// clearing the stage deadline.
//
// Determinism: in a run that is never cancelled, poll() only reads relaxed
// atomics (and the clock, whose value it ignores), so polling sites do not
// perturb results; cancelled runs are inherently timing-dependent and only
// promise a well-formed partial result.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <stdexcept>

namespace ftes {

/// Thrown by library calls that cannot return a meaningful partial result
/// when cancelled mid-flight (e.g. conditional_schedule: tables built from
/// a scenario subset would be wrong, not partial).  The optimizers never
/// throw it -- they return their incumbent instead.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const char* what) : std::runtime_error(what) {}
};

class CancellationToken {
 public:
  CancellationToken() = default;
  /// A child token: poll()/cancelled() also observe `parent`, which must
  /// outlive this token.  Cancelling the child does not touch the parent.
  explicit CancellationToken(CancellationToken* parent) : parent_(parent) {}

  /// Late parent attachment for tokens whose owner constructs them (e.g.
  /// a SynthesisContext inside a server job chaining to the server-wide
  /// shutdown token).  Must be called before the token is shared with
  /// other threads: parent_ is an unsynchronized pointer, published by
  /// whatever handoff starts those threads.
  void set_parent(CancellationToken* parent) noexcept { parent_ = parent; }

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Flips the flag from any thread.  Idempotent; the first flip (from any
  /// source) stamps the time that seconds_since_cancel() measures from.
  void request_cancel() noexcept { mark_cancelled(false); }

  /// Fast check: no clock read, never flips the flag.  Use inside tight
  /// serial loops that already passed a poll() recently.
  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  /// Cancellation point: checks the flag, the parent's flag, then this
  /// token's own armed deadlines (one clock read), flipping the flag on
  /// expiry.  Safe to call concurrently from every worker.  (The parent's
  /// deadlines are NOT evaluated here -- see the header comment.)
  [[nodiscard]] bool poll() noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (parent_ != nullptr && parent_->cancelled()) {
      mark_cancelled(false);
      return true;
    }
    const long long stage = stage_deadline_ns_.load(std::memory_order_relaxed);
    const long long total = total_deadline_ns_.load(std::memory_order_relaxed);
    if (stage == kNoDeadline && total == kNoDeadline) return false;
    const long long now = now_ns();
    if ((stage != kNoDeadline && now >= stage) ||
        (total != kNoDeadline && now >= total)) {
      mark_cancelled(true);
      return true;
    }
    return false;
  }

  /// Arms the whole-run watchdog: poll() cancels `ms` from now.
  void arm_total_budget_ms(long long ms) noexcept {
    total_deadline_ns_.store(deadline_from_ms(ms), std::memory_order_relaxed);
  }

  /// Arms the per-stage watchdog: poll() cancels `ms` from now.  Re-armed
  /// by the pipeline at every stage start; cleared at stage end.
  void arm_stage_budget_ms(long long ms) noexcept {
    stage_deadline_ns_.store(deadline_from_ms(ms), std::memory_order_relaxed);
  }

  void clear_stage_deadline() noexcept {
    stage_deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  /// True when the cancellation came from an armed deadline (as opposed to
  /// an external request_cancel()).
  [[nodiscard]] bool deadline_expired() const noexcept {
    return deadline_hit_.load(std::memory_order_relaxed);
  }

  /// Seconds elapsed since the flag first flipped; 0 when not cancelled.
  /// Measured at stage end this is the cancel latency: how long the stage
  /// kept working past the cancellation.
  [[nodiscard]] double seconds_since_cancel() const noexcept {
    const long long at = cancel_at_ns_.load(std::memory_order_relaxed);
    if (at == 0) return 0.0;
    const long long delta = now_ns() - at;
    return delta > 0 ? static_cast<double>(delta) * 1e-9 : 0.0;
  }

 private:
  static constexpr long long kNoDeadline = -1;

  [[nodiscard]] static long long now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// now + ms, saturating: an absurdly large budget ("practically
  /// unlimited") must not wrap negative and fire instantly.
  [[nodiscard]] static long long deadline_from_ms(long long ms) noexcept {
    const long long now = now_ns();
    if (ms < 0) return now;  // defensive: callers gate on ms >= 0
    constexpr long long kMax = std::numeric_limits<long long>::max();
    if (ms > (kMax - now) / 1'000'000) return kMax;  // never expires
    return now + ms * 1'000'000;
  }

  void mark_cancelled(bool from_deadline) noexcept {
    // The first flip (CAS winner) stamps the latency clock; later flips
    // from other sources must not move it.
    long long expected = 0;
    cancel_at_ns_.compare_exchange_strong(expected, now_ns(),
                                          std::memory_order_relaxed);
    if (from_deadline) deadline_hit_.store(true, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_relaxed);
  }

  CancellationToken* parent_ = nullptr;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_hit_{false};
  std::atomic<long long> cancel_at_ns_{0};
  std::atomic<long long> stage_deadline_ns_{kNoDeadline};
  std::atomic<long long> total_deadline_ns_{kNoDeadline};
};

}  // namespace ftes
