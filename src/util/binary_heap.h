// Minimal array-backed binary min-heap used by the list scheduler's ready
// queue and pending-transmission queue (sched/list_scheduler.cpp).
//
// std::priority_queue would do for push/top/pop, but it hides its storage;
// the incremental scheduler snapshots heap state wholesale and transplants
// it (with remapped vertex ids) into a resumed run, so the container must
// expose its items.  Comparators here must induce a *total* order (the
// scheduler keys carry a unique vertex id / sequence number), which makes
// the pop order independent of the internal array arrangement -- a heap
// rebuilt via assign() pops identically to one grown via push().
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace ftes {

template <class T, class Less>
class BinaryMinHeap {
 public:
  BinaryMinHeap() = default;

  void push(T item) {
    items_.push_back(std::move(item));
    std::push_heap(items_.begin(), items_.end(), Inverted{});
  }

  /// Smallest item under Less; heap must be non-empty.
  [[nodiscard]] const T& top() const { return items_.front(); }

  void pop() {
    std::pop_heap(items_.begin(), items_.end(), Inverted{});
    items_.pop_back();
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Underlying storage in heap order (for snapshots).
  [[nodiscard]] const std::vector<T>& items() const { return items_; }

  /// Replaces the contents (heapifies in O(n)); used to restore snapshots.
  void assign(std::vector<T> items) {
    items_ = std::move(items);
    std::make_heap(items_.begin(), items_.end(), Inverted{});
  }

  void clear() { items_.clear(); }

 private:
  // std:: heap algorithms build max-heaps; invert Less to get a min-heap.
  struct Inverted {
    bool operator()(const T& a, const T& b) const { return Less{}(b, a); }
  };

  std::vector<T> items_;
};

}  // namespace ftes
