// Minimal fixed-size thread pool and a blocking parallel_for on top of it.
//
// The design-space exploration spends nearly all of its time in pure
// objective evaluations (sched/wcsl.h), which are embarrassingly parallel
// across candidate moves and across problem instances.  This pool keeps the
// parallelism simple and deadlock-free:
//
//   * one process-wide shared pool (hardware_concurrency - 1 workers),
//   * parallel_for's calling thread always participates in the work, so a
//     nested parallel_for (a batch task whose optimizer parallelizes its
//     neighborhood) degrades to serial execution instead of deadlocking
//     when every worker is busy,
//   * no work stealing, no futures -- just an atomic index counter and a
//     completion count per parallel_for call.
//
// Determinism: parallel_for(n, threads, body) calls body(i) exactly once
// for every i in [0, n); callers write results into pre-sized slots indexed
// by i, so the outcome is independent of thread count and interleaving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftes {

class ThreadPool {
 public:
  /// `workers` < 0 picks hardware_concurrency() - 1; 0 is an explicit
  /// zero-worker pool (legal: parallel_for then runs inline).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);

  [[nodiscard]] int worker_count() const {
    return static_cast<int>(workers_.size());
  }

  /// The process-wide pool used by parallel_for.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Runs body(i) for every i in [0, n), using at most `threads` concurrent
/// executors (the calling thread plus helpers from `pool`).  Helpers are
/// additionally capped at the pool's worker count, so a worker-less pool
/// (single-core hardware) degrades to the inline loop.  Blocks until every
/// iteration finished.  threads <= 1 or n <= 1 runs inline with zero
/// synchronization.  The first exception thrown by `body` is rethrown on
/// the calling thread after the loop drains.
void parallel_for(ThreadPool& pool, std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body);

/// Same, on the process-wide shared pool.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body);

/// Resolves a user-facing --threads value: 0 means "all hardware threads",
/// anything else is clamped to >= 1.
[[nodiscard]] int resolve_threads(int requested);

}  // namespace ftes
