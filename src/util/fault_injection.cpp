#include "util/fault_injection.h"

#include <mutex>
#include <new>
#include <utility>

#include "util/cancellation.h"

namespace ftes::fi {

namespace {

struct RuleState {
  FaultRule rule;
  std::uint64_t fired = 0;  ///< fires charged against rule.limit
};

struct Registry {
  std::mutex mutex;
  std::vector<RuleState> rules;
  std::map<std::string, SiteStats> sites;
};

std::atomic<bool> g_armed{false};

/// The innermost JobScope of the current thread (nullptr outside a job).
thread_local JobScope* t_scope = nullptr;

Registry& registry() {
  static Registry r;
  return r;
}

std::uint64_t parse_u64(const std::string& spec, const std::string& value) {
  try {
    // stoull wraps "-1" to ULLONG_MAX instead of failing.
    if (value.empty() || value[0] == '-') throw std::invalid_argument(value);
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault rule '" + spec +
                                "': expected an unsigned integer, got '" +
                                value + "'");
  }
}

}  // namespace

FaultRule parse_rule(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() < 2 || parts[0].empty()) {
    throw std::invalid_argument(
        "fault rule '" + spec +
        "': expected site:kind[:every=N][:offset=N][:limit=N]");
  }
  FaultRule rule;
  rule.site = parts[0];
  const std::string& kind = parts[1];
  if (kind == "throw") {
    rule.kind = FaultKind::kThrow;
  } else if (kind == "bad-alloc" || kind == "bad_alloc") {
    rule.kind = FaultKind::kBadAlloc;
  } else if (kind == "cancel") {
    rule.kind = FaultKind::kCancel;
  } else {
    throw std::invalid_argument("fault rule '" + spec + "': unknown kind '" +
                                kind + "' (throw|bad-alloc|cancel)");
  }
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault rule '" + spec +
                                  "': expected key=value, got '" + parts[i] +
                                  "'");
    }
    const std::string key = parts[i].substr(0, eq);
    const std::string value = parts[i].substr(eq + 1);
    if (key == "every") {
      rule.every = parse_u64(spec, value);
      if (rule.every == 0) {
        throw std::invalid_argument("fault rule '" + spec +
                                    "': every must be >= 1");
      }
    } else if (key == "offset") {
      rule.offset = parse_u64(spec, value);
    } else if (key == "limit") {
      rule.limit = parse_u64(spec, value);
    } else {
      throw std::invalid_argument("fault rule '" + spec + "': unknown key '" +
                                  key + "' (every|offset|limit)");
    }
  }
  return rule;
}

void configure(std::vector<FaultRule> rules) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.rules.clear();
  reg.rules.reserve(rules.size());
  for (FaultRule& r : rules) reg.rules.push_back(RuleState{std::move(r), 0});
  reg.sites.clear();
  g_armed.store(!reg.rules.empty(), std::memory_order_relaxed);
}

void disarm() { configure({}); }

std::map<std::string, SiteStats> stats() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.sites;
}

bool armed() noexcept { return g_armed.load(std::memory_order_relaxed); }

JobScope::JobScope(std::uint64_t job_index)
    : prev_(t_scope), job_index_(job_index) {
  t_scope = this;
}

JobScope::~JobScope() { t_scope = prev_; }

void hit_armed(const char* site) {
  Registry& reg = registry();
  FaultKind fire_kind = FaultKind::kThrow;
  bool fire = false;
  std::string fired_site;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.rules.empty()) return;  // disarmed between the load and here
    SiteStats& st = reg.sites[site];
    JobScope* scope = t_scope;
    // With a scope the schedule key depends only on the job's stream
    // index and the job's own trace, never on cross-job interleaving;
    // the global counter keeps aggregating for the stats() sums.
    const std::uint64_t hit_number =
        scope != nullptr ? scope->job_index_ + scope->local_hits_[site]++
                         : st.hits;
    ++st.hits;
    for (std::size_t i = 0; i < reg.rules.size(); ++i) {
      RuleState& rs = reg.rules[i];
      if (rs.rule.site != site) continue;
      if (hit_number % rs.rule.every != rs.rule.offset % rs.rule.every) {
        continue;
      }
      std::uint64_t& fired_budget =
          scope != nullptr ? scope->rule_fired_[i] : rs.fired;
      if (rs.rule.limit != 0 && fired_budget >= rs.rule.limit) continue;
      ++fired_budget;
      ++st.fired;
      fire = true;
      fire_kind = rs.rule.kind;
      fired_site = site;
      break;
    }
  }
  if (!fire) return;  // throw outside the lock
  switch (fire_kind) {
    case FaultKind::kThrow:
      throw InjectedFault("injected fault at site '" + fired_site + "'");
    case FaultKind::kBadAlloc:
      throw std::bad_alloc();
    case FaultKind::kCancel:
      throw CancelledError(
          ("injected cancellation at site '" + fired_site + "'").c_str());
  }
}

}  // namespace ftes::fi
