// Minimal leveled logger.  Benchmarks and the tabu search use it to trace
// progress without polluting stdout (which carries the reproduced tables).
#pragma once

#include <sstream>
#include <string>

namespace ftes {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.  Default: kWarn, so
/// library code is silent in tests/benches unless something is wrong.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

/// Stream-style logger: LOG(kInfo) << "moved " << p << " to " << n;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() {
    if (level_ >= log_level()) detail::log_line(level_, out_.str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <class T>
  LogStream& operator<<(const T& v) {
    if (level_ >= log_level()) out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace ftes

#define FTES_LOG(level) ::ftes::LogStream(::ftes::LogLevel::level)
