#include "util/random.h"

#include <cassert>

namespace ftes {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return std::bernoulli_distribution(probability)(engine_);
}

std::size_t Rng::index(std::size_t size) {
  assert(size > 0);
  return static_cast<std::size_t>(
      std::uniform_int_distribution<std::size_t>(0, size - 1)(engine_));
}

}  // namespace ftes
