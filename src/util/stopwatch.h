// Wall-clock stopwatch shared by the batch runner's reports and the
// benches' summary lines.
#pragma once

#include <chrono>

namespace ftes {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ftes
