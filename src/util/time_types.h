// Basic time and identifier types shared by every ftes module.
//
// All times are integer ticks; in examples and benchmarks one tick is
// interpreted as one millisecond, matching the units used throughout the
// DATE'08 paper (e.g. C1 = 60 ms, alpha = 10 ms in its Fig. 1).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace ftes {

/// Discrete time in ticks (1 tick == 1 ms in all shipped experiments).
using Time = std::int64_t;

/// Sentinel for "not yet scheduled" / "unreachable".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max() / 4;

/// A strongly typed index.  Distinct Tag types make ProcessId, NodeId,
/// MessageId etc. non-interchangeable at compile time while keeping the
/// runtime representation a plain 32-bit index into a vector.
template <class Tag>
struct Id {
  std::int32_t value = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value >= 0; }
  [[nodiscard]] constexpr std::int32_t get() const { return value; }

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
};

struct ProcessTag {};
struct MessageTag {};
struct NodeTag {};

/// Index of a process in Application::processes().
using ProcessId = Id<ProcessTag>;
/// Index of a message in Application::messages().
using MessageId = Id<MessageTag>;
/// Index of a computation node in Architecture::nodes().
using NodeId = Id<NodeTag>;

}  // namespace ftes

// Hash support so ids can key unordered containers.
template <class Tag>
struct std::hash<ftes::Id<Tag>> {
  std::size_t operator()(ftes::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
