#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "util/fault_injection.h"

namespace ftes {

namespace {

int default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<int>(hw) - 1 : 0;
}

}  // namespace

ThreadPool::ThreadPool(int workers) {
  const int count = workers >= 0 ? workers : default_workers();
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(-1);
  return pool;
}

namespace {

/// Shared state of one parallel_for call.  An iteration costs two brief
/// lock acquisitions, which is noise next to an objective evaluation; in
/// exchange the accounting is exact: the caller's wait returns only when no
/// iteration is running and none can start, so helpers that fire late (the
/// shared_ptr keeps the state alive for them) can never touch caller-owned
/// buffers after parallel_for returned.
struct ForState {
  std::size_t n = 0;
  std::function<void(std::size_t)> body;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t next = 0;       ///< first unclaimed index; n blocks new claims
  std::size_t claimed = 0;    ///< iterations handed to some thread
  std::size_t completed = 0;  ///< iterations finished (even by exception)
  std::exception_ptr error;   ///< first failure

  void run() {
    for (;;) {
      std::size_t i;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (next >= n) return;
        i = next++;
        ++claimed;
      }
      try {
        FTES_FAULT_POINT("pool.chunk");
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        next = n;  // stop handing out indices; in-flight ones finish
      }
      std::lock_guard<std::mutex> lock(mutex);
      ++completed;
      if (completed == claimed && next >= n) done_cv.notify_all();
    }
  }
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Helpers beyond the pool's worker count would never be picked up on a
  // saturated (or worker-less, single-core) pool and would pin the call's
  // state in the queue; the caller covers the remainder itself.
  const std::size_t helpers = std::min<std::size_t>(
      {n - 1, threads > 1 ? static_cast<std::size_t>(threads) - 1 : 0,
       static_cast<std::size_t>(pool.worker_count())});
  if (helpers == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      FTES_FAULT_POINT("pool.chunk");
      body(i);
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->body = body;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([state] { state->run(); });
  }
  state->run();  // the caller always works too (nesting-safe)

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&] {
    return state->completed == state->claimed && state->next >= state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(ThreadPool::shared(), n, threads, body);
}

int resolve_threads(int requested) {
  if (requested == 0) {
    return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  return std::max(1, requested);
}

}  // namespace ftes
