// Deterministic random source used by the generator and the optimizers.
//
// A thin wrapper over std::mt19937_64 so every experiment is reproducible
// from a single seed printed in its header line.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ftes {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xF7E5'2008'DA7Eull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Uniformly chosen index into a container of the given size (> 0).
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 mix (Steele et al.) of a base seed and a stream index:
/// decorrelated per-item streams that depend only on (base, index), never
/// on scheduling -- the backbone of every thread-count-invariant sweep
/// (batch tasks, fuzz trials).
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(std::uint64_t base,
                                                         std::uint64_t index) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace ftes
