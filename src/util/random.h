// Deterministic random source used by the generator and the optimizers.
//
// A thin wrapper over std::mt19937_64 so every experiment is reproducible
// from a single seed printed in its header line.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ftes {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xF7E5'2008'DA7Eull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Uniformly chosen index into a container of the given size (> 0).
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ftes
