// Top-level synthesis API: the paper's problem formulation of Section 6.
//
// Given an application A (Section 4), an architecture N + TDMA bus B
// (Section 2) and the fault bound k (Section 2), find a configuration
//
//     psi = <F, M, S>
//
// with F = <P, Q, R, X> the fault-tolerance policy assignment, M the
// mapping of every copy, and S the set of quasi-static schedule tables,
// such that the k faults are tolerated, transparency is honoured, and the
// deadlines hold.
//
// This facade runs the default synthesis pipeline (core/pipeline.h):
// tabu-search policy assignment + mapping (src/opt), global checkpoint
// refinement (src/opt), and, when the scenario space allows it, conditional
// scheduling into schedule tables (src/sched).  Tooling that needs to run,
// skip, instrument or cancel individual stages should build a Pipeline and
// SynthesisContext directly; the results are bit-identical.
#pragma once

#include <optional>

#include "app/application.h"
#include "arch/architecture.h"
#include "fault/fault_model.h"
#include "fault/policy.h"
#include "opt/checkpoint_opt.h"
#include "opt/policy_assignment.h"
#include "sched/cond_scheduler.h"
#include "sched/wcsl.h"

namespace ftes {

struct SynthesisOptions {
  FaultModel fault_model;
  OptimizeOptions optimize;
  CondScheduleOptions schedule;
  /// Refine checkpoint counts globally after the tabu search.
  bool refine_checkpoints = true;
  /// Generate schedule tables (exponential in k; skip for large designs and
  /// use the WCSL bound only).
  bool build_schedule_tables = true;
  /// Speculative stage execution: while the checkpoint refinement runs,
  /// generate schedule tables for its incumbent in the background; adopt
  /// them when the refinement does not improve (bit-identical results,
  /// asserted -- see core/pipeline.h).
  bool speculate = false;
  /// Deadline watchdog (core/pipeline.h): wall-clock budget per stage /
  /// for the whole run, in milliseconds.  Negative = unlimited; 0 cancels
  /// at the first cancellation point.  On expiry the run's cancellation
  /// token flips and a well-formed partial result is returned with
  /// `timed_out` set.
  long long stage_budget_ms = -1;
  long long total_budget_ms = -1;
};

struct SynthesisResult {
  PolicyAssignment assignment;        ///< F and M
  WcslResult wcsl;                    ///< analytic worst case
  std::optional<CondScheduleResult> schedule;  ///< S (tables), if built
  bool schedulable = false;           ///< deadlines hold in the worst case
  int evaluations = 0;                ///< objective evaluations spent
  /// The run was cancelled (externally or by the deadline watchdog); the
  /// fields above describe the well-formed partial state at that point.
  bool cancelled = false;
  bool timed_out = false;             ///< the cancellation came from a budget
};

/// End-to-end synthesis.  Throws std::invalid_argument on model errors.
[[nodiscard]] SynthesisResult synthesize(const Application& app,
                                         const Architecture& arch,
                                         const SynthesisOptions& options);

}  // namespace ftes
