#include "core/metrics.h"

#include <numeric>
#include <stdexcept>

namespace ftes {

double fto_percent(Time ft_wcsl, Time nft_length) {
  if (nft_length <= 0) throw std::invalid_argument("nft length must be > 0");
  return 100.0 * static_cast<double>(ft_wcsl - nft_length) /
         static_cast<double>(nft_length);
}

double percent_deviation(double value, double baseline) {
  if (baseline <= 0) throw std::invalid_argument("baseline must be > 0");
  return 100.0 * (value - baseline) / baseline;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

}  // namespace ftes
