#include "core/synthesis.h"

#include "core/pipeline.h"

namespace ftes {

SynthesisResult synthesize(const Application& app, const Architecture& arch,
                           const SynthesisOptions& options) {
  // Thin wrapper over the default pipeline (core/pipeline.h): same stages,
  // same order, bit-identical results (asserted by tests/test_pipeline.cpp).
  SynthesisContext ctx(app, arch, options);
  Pipeline pipeline = Pipeline::default_pipeline();
  return pipeline.run(ctx);
}

}  // namespace ftes
