#include "core/synthesis.h"

#include "util/logging.h"

namespace ftes {

SynthesisResult synthesize(const Application& app, const Architecture& arch,
                           const SynthesisOptions& options) {
  app.validate(arch);
  options.fault_model.validate();

  SynthesisResult result;

  OptimizeResult opt =
      optimize_policy_and_mapping(app, arch, options.fault_model,
                                  options.optimize);
  result.evaluations = opt.evaluations;

  if (options.refine_checkpoints && options.optimize.optimize_checkpoints) {
    CheckpointOptResult refined = optimize_checkpoints_global(
        app, arch, options.fault_model, std::move(opt.assignment),
        options.optimize.max_checkpoints);
    result.evaluations += refined.evaluations;
    opt.assignment = std::move(refined.assignment);
    opt.wcsl = refined.wcsl;
  }

  result.assignment = std::move(opt.assignment);
  result.wcsl =
      evaluate_wcsl(app, arch, result.assignment, options.fault_model);
  result.schedulable = result.wcsl.meets_deadlines(app);

  if (options.build_schedule_tables) {
    try {
      result.schedule = conditional_schedule(
          app, arch, result.assignment, options.fault_model, options.schedule);
      // The scenario-exact WCSL can only be tighter than the analytic bound.
      result.schedulable =
          result.schedulable || result.schedule->wcsl <= app.deadline();
    } catch (const std::length_error& e) {
      FTES_LOG(kInfo) << "schedule tables skipped: " << e.what();
    }
  }
  return result;
}

}  // namespace ftes
