#include "core/pipeline.h"

#include <cassert>
#include <sstream>
#include <utility>

#include "util/fault_injection.h"
#include "util/json_io.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftes {

namespace {

void fill_eval_metrics(StageMetrics& metrics, const EvalStats& spent) {
  metrics.evaluations = spent.evaluations;
  metrics.cache_hits = spent.dp_vertices_reused;
  metrics.cache_misses = spent.dp_vertices_total - spent.dp_vertices_reused;
  metrics.sched_events_total = spent.ls_events_total;
  metrics.sched_events_resumed = spent.ls_events_resumed;
  metrics.rebase_cache_hits = spent.rebase_cache_hits;
  metrics.rebase_log_recorded = spent.rebase_log_recorded;
  metrics.rebase_full_builds = spent.rebase_full_builds;
  metrics.rebase_batched = spent.rebase_batched;
  metrics.rebase_interval_mismatch = spent.rebase_interval_mismatch;
  metrics.snapshot_refs_shared = spent.snapshot_refs_shared;
  metrics.snapshot_bytes_copied = spent.snapshot_bytes_copied;
}

void fill_search_metrics(StageMetrics& metrics, const SearchStats& stats) {
  metrics.search_iterations = stats.iterations;
  metrics.search_accepted = stats.accepted_moves;
  metrics.search_tabu_rejected = stats.tabu_rejected;
  metrics.search_aspiration = stats.aspiration_accepted;
}

bool same_assignment(const PolicyAssignment& a, const PolicyAssignment& b) {
  if (a.process_count() != b.process_count()) return false;
  for (int i = 0; i < a.process_count(); ++i) {
    if (a.plan(ProcessId{i}) != b.plan(ProcessId{i})) return false;
  }
  return true;
}

}  // namespace

std::string StageMetrics::to_json() const {
  std::ostringstream out;
  out << "{\"stage\": ";
  json_escape(out, stage);
  out << ", \"skipped\": " << (skipped ? "true" : "false")
      << ", \"evaluations\": " << evaluations
      << ", \"cache_hits\": " << cache_hits
      << ", \"cache_misses\": " << cache_misses
      << ", \"sched_events_total\": " << sched_events_total
      << ", \"sched_events_resumed\": " << sched_events_resumed
      << ", \"rebase_cache_hits\": " << rebase_cache_hits
      << ", \"rebase_log_recorded\": " << rebase_log_recorded
      << ", \"rebase_full_builds\": " << rebase_full_builds
      << ", \"rebase_batched\": " << rebase_batched
      << ", \"rebase_interval_mismatch\": " << rebase_interval_mismatch
      << ", \"snapshot_refs_shared\": " << snapshot_refs_shared
      << ", \"snapshot_bytes_copied\": " << snapshot_bytes_copied
      << ", \"search_iterations\": " << search_iterations
      << ", \"search_accepted\": " << search_accepted
      << ", \"search_tabu_rejected\": " << search_tabu_rejected
      << ", \"search_aspiration\": " << search_aspiration
      << ", \"spec_hits\": " << spec_hits
      << ", \"spec_misses\": " << spec_misses << ", \"spec_seconds\": ";
  json_seconds(out, spec_seconds);
  out << ", \"timed_out\": " << (timed_out ? "true" : "false")
      << ", \"cancel_latency_seconds\": ";
  json_seconds(out, cancel_latency_seconds);
  out << ", \"fuzz_trials\": " << fuzz_trials
      << ", \"fuzz_failing_trials\": " << fuzz_failing_trials
      << ", \"fuzz_violations\": " << fuzz_violations
      << ", \"fuzz_worst_completion\": " << fuzz_worst_completion
      << ", \"result_cache_hits\": " << result_cache_hits
      << ", \"result_cache_misses\": " << result_cache_misses
      << ", \"result_cache_evictions\": " << result_cache_evictions
      << ", \"seconds\": ";
  json_seconds(out, seconds);
  out << "}";
  return out.str();
}

std::string metrics_to_json(const std::vector<StageMetrics>& stages) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out << ", ";
    out << stages[i].to_json();
  }
  out << "]";
  return out.str();
}

SynthesisContext::SynthesisContext(Application app, Architecture arch,
                                   SynthesisOptions options)
    : app_(std::move(app)),
      arch_(std::move(arch)),
      options_(std::move(options)),
      eval_(app_, arch_, options_.fault_model) {
  app_.validate(arch_);
  options_.fault_model.validate();
}

ThreadPool& SynthesisContext::pool() const {
  return options_.optimize.pool ? *options_.optimize.pool
                                : ThreadPool::shared();
}

// --- speculative stage execution --------------------------------------------

SpeculationTask::SpeculationTask(SynthesisContext& ctx,
                                 PolicyAssignment incumbent)
    : app_(ctx.app()),
      arch_(ctx.arch()),
      model_(ctx.model()),
      sched_(ctx.options().schedule),
      build_tables_(ctx.options().build_schedule_tables),
      incumbent_(std::move(incumbent)),
      cancel_(&ctx.cancel_token()) {
  sched_.threads = ctx.options().optimize.threads;
  sched_.pool = ctx.options().optimize.pool;
  sched_.cancel = &cancel_;
}

std::shared_ptr<SpeculationTask> SpeculationTask::launch(
    SynthesisContext& ctx, const PolicyAssignment& incumbent) {
  std::shared_ptr<SpeculationTask> task(new SpeculationTask(ctx, incumbent));
  // The job only captures the shared_ptr: if the task is abandoned before a
  // worker picks it up, run() no-ops without touching the ctx references.
  ctx.pool().submit([task] { task->run(); });
  return task;
}

void SpeculationTask::run() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != kPending) return;  // claimed inline or abandoned
    state_ = kRunning;
  }
  run_body();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = kDone;
  }
  cv_.notify_all();
}

void SpeculationTask::run_body() {
  const Stopwatch watch;
  // No exception may escape: this runs on a pool worker (an escape would
  // terminate the process) and finish()/abandon() wait for kDone.  The
  // error is rethrown by finish(), where the serial stage would have
  // thrown it; abandon() swallows it with the rest of the dead result.
  try {
    if (cancel_.poll()) {  // already dead: let abandon() drain instantly
      ok_ = false;
    } else {
      // Full-DP evaluation, deliberately not through the shared
      // EvalContext (the refinement stage owns it right now):
      // bit-identical to the cached rows the serial stage reads, which
      // adoption asserts.
      wcsl_ = evaluate_wcsl(app_, arch_, incumbent_, model_);
      ok_ = !cancel_.poll();
      if (ok_ && build_tables_) {
        try {
          schedule_ = conditional_schedule(app_, arch_, incumbent_, model_,
                                           sched_);
        } catch (const CancelledError&) {
          ok_ = false;
        } catch (const std::length_error& e) {
          // Same downgrade as the serial stage: analytic bound only.
          FTES_LOG(kInfo) << "speculative tables skipped: " << e.what();
        }
      }
    }
  } catch (...) {
    error_ = std::current_exception();
    ok_ = false;
  }
  seconds_ = watch.seconds();
}

bool SpeculationTask::finish() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ == kPending) {
    state_ = kRunning;
    lock.unlock();
    run_body();
    lock.lock();
    state_ = kDone;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return state_ == kDone; });
  }
  if (error_) std::rethrow_exception(error_);
  return ok_;
}

void SpeculationTask::abandon() {
  cancel_.request_cancel();
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ == kPending) {
    state_ = kAbandoned;
    return;
  }
  cv_.wait(lock, [&] { return state_ == kDone || state_ == kAbandoned; });
}

// --- stages -----------------------------------------------------------------

void PolicyAssignmentStage::run(SynthesisContext& ctx, SynthesisState& state,
                                StageMetrics& metrics) {
  OptimizeOptions opt = ctx.options().optimize;
  opt.eval = &ctx.eval();
  opt.cancel = &ctx.cancel_token();
  OptimizeResult r =
      optimize_policy_and_mapping(ctx.app(), ctx.arch(), ctx.model(), opt);
  state.assignment = std::move(r.assignment);
  state.wcsl_bound = r.wcsl;
  state.schedulable = r.schedulable;
  state.evaluations += r.evaluations;
  fill_eval_metrics(metrics, r.eval_stats);
  fill_search_metrics(metrics, r.search_stats);
}

void CheckpointRefineStage::run(SynthesisContext& ctx, SynthesisState& state,
                                StageMetrics& metrics) {
  const SynthesisOptions& options = ctx.options();
  if (!options.refine_checkpoints || !options.optimize.optimize_checkpoints) {
    metrics.skipped = true;
    return;
  }
  CheckpointOptOptions opt;
  opt.max_checkpoints = options.optimize.max_checkpoints;
  opt.threads = options.optimize.threads;
  opt.pool = options.optimize.pool;
  opt.eval = &ctx.eval();
  opt.cancel = &ctx.cancel_token();
  CheckpointOptResult r = optimize_checkpoints_global(
      ctx.app(), ctx.arch(), ctx.model(), std::move(state.assignment), opt);
  state.assignment = std::move(r.assignment);
  state.wcsl_bound = r.wcsl;
  state.evaluations += r.evaluations;
  fill_eval_metrics(metrics, r.eval_stats);
  fill_search_metrics(metrics, r.search_stats);
}

void ScheduleTableStage::run(SynthesisContext& ctx, SynthesisState& state,
                             StageMetrics& metrics) {
  const SynthesisOptions& options = ctx.options();
  std::shared_ptr<SpeculationTask> spec = state.speculation;
  const EvalStats before = ctx.eval().stats();
  // Usually served straight from the cached base DP: the refinement stage
  // left the evaluator rebased on exactly this assignment.
  state.wcsl = ctx.eval().evaluate_full(state.assignment);
  state.schedulable = state.wcsl.meets_deadlines(ctx.app());
  fill_eval_metrics(metrics, ctx.eval().stats().since(before));
  if (!options.build_schedule_tables) {
    return;  // an (impossible) stray speculation drains in Pipeline::run
  }

  CancellationToken& cancel = ctx.cancel_token();
  if (spec && !same_assignment(spec->incumbent(), state.assignment)) {
    // Refinement improved past the incumbent: the speculative tables
    // describe a dead assignment.  Cancel it but do NOT join here -- the
    // serial rebuild below overlaps with the dead task winding down, and
    // Pipeline::run's drain guard (which still holds it through
    // state.speculation) joins afterwards.
    spec->discard();
    metrics.spec_misses = 1;
    spec.reset();
  }
  if (spec) {
    state.speculation.reset();  // consumed: finish() below joins it
    const bool usable = spec->finish() && !cancel.cancelled();
    metrics.spec_seconds = spec->seconds();
    if (usable && spec->wcsl().makespan == state.wcsl.makespan &&
        spec->wcsl().process_finish == state.wcsl.process_finish) {
      // Adoption: bit-identical to the serial stage by construction (the
      // equality above cross-checks the task's full DP against the
      // evaluator's cached rows; conditional_schedule is a pure function
      // of the adopted assignment).
      metrics.spec_hits = 1;
      state.schedule = std::move(spec->schedule());
      if (state.schedule) {
        state.schedulable = state.schedulable ||
                            state.schedule->wcsl <= ctx.app().deadline();
      }
      return;
    }
    assert(!usable && "speculative WCSL diverged from the cached base rows");
    metrics.spec_misses = 1;
  }

  if (cancel.poll()) return;
  try {
    CondScheduleOptions sched = options.schedule;
    sched.threads = options.optimize.threads;
    sched.pool = options.optimize.pool;
    sched.cancel = &cancel;
    state.schedule = conditional_schedule(ctx.app(), ctx.arch(),
                                          state.assignment, ctx.model(),
                                          sched);
    // The scenario-exact WCSL can only be tighter than the analytic bound.
    state.schedulable = state.schedulable ||
                        state.schedule->wcsl <= ctx.app().deadline();
  } catch (const CancelledError&) {
    // Tables from a scenario subset would be wrong, not partial: return
    // the analytic result only; the pipeline reports the timeout.
  } catch (const std::length_error& e) {
    FTES_LOG(kInfo) << "schedule tables skipped: " << e.what();
  }
}

// --- pipeline ---------------------------------------------------------------

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

SynthesisResult Pipeline::run(SynthesisContext& ctx) {
  metrics_.assign(stages_.size(), StageMetrics{});
  SynthesisState state;
  // A speculation nobody consumed (its consumer was skipped by a cancel, a
  // custom stage list never reached it, or a stage / progress callback
  // threw) must drain before the context it references can go away --
  // including on the exceptional path, hence the scope guard.
  struct SpeculationDrain {
    SynthesisState& state;
    ~SpeculationDrain() {
      if (state.speculation) state.speculation->abandon();
    }
  } drain{state};
  const SynthesisOptions& options = ctx.options();
  CancellationToken& cancel = ctx.cancel_token();
  if (options.total_budget_ms >= 0) {
    cancel.arm_total_budget_ms(options.total_budget_ms);
  }
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    Stage& stage = *stages_[i];
    StageMetrics& metrics = metrics_[i];
    metrics.stage = stage.name();
    if (cancel.poll()) {
      metrics.skipped = true;
      metrics.timed_out = cancel.deadline_expired();
      continue;
    }
    if (options.speculate && options.build_schedule_tables &&
        !state.speculation && stage.refines_incumbent()) {
      for (std::size_t j = i + 1; j < stages_.size(); ++j) {
        if (stages_[j]->consumes_speculation()) {
          state.speculation = SpeculationTask::launch(ctx, state.assignment);
          break;
        }
      }
    }
    StageProgress progress{static_cast<int>(i), stage_count(), stage.name(),
                           false};
    ctx.report_progress(progress);
    if (options.stage_budget_ms >= 0) {
      cancel.arm_stage_budget_ms(options.stage_budget_ms);
    }
    const Stopwatch watch;
    FTES_FAULT_POINT("pipeline.stage");
    stage.run(ctx, state, metrics);
    metrics.seconds = watch.seconds();
    cancel.clear_stage_deadline();
    if (cancel.cancelled()) {
      metrics.timed_out = cancel.deadline_expired();
      metrics.cancel_latency_seconds = cancel.seconds_since_cancel();
    }
    progress.finished = true;
    ctx.report_progress(progress);
  }
  SynthesisResult result;
  result.assignment = std::move(state.assignment);
  result.wcsl = std::move(state.wcsl);
  if (result.wcsl.process_finish.empty() && state.wcsl_bound > 0) {
    // The analysis stage never ran (cancelled pipeline, or a custom stage
    // list without it): surface the optimizer stages' analytic bound so
    // the partial result still reports a meaningful worst case.
    result.wcsl.makespan = state.wcsl_bound;
  }
  result.schedule = std::move(state.schedule);
  result.schedulable = state.schedulable;
  result.evaluations = state.evaluations;
  result.cancelled = cancel.cancelled();
  result.timed_out = cancel.deadline_expired();
  return result;
}

Pipeline Pipeline::default_pipeline() {
  Pipeline pipeline;
  pipeline.add(std::make_unique<PolicyAssignmentStage>())
      .add(std::make_unique<CheckpointRefineStage>())
      .add(std::make_unique<ScheduleTableStage>());
  return pipeline;
}

}  // namespace ftes
