#include "core/pipeline.h"

#include <sstream>
#include <utility>

#include "util/json_io.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftes {

namespace {

void fill_eval_metrics(StageMetrics& metrics, const EvalStats& spent) {
  metrics.evaluations = spent.evaluations;
  metrics.cache_hits = spent.dp_vertices_reused;
  metrics.cache_misses = spent.dp_vertices_total - spent.dp_vertices_reused;
  metrics.sched_events_total = spent.ls_events_total;
  metrics.sched_events_resumed = spent.ls_events_resumed;
  metrics.rebase_cache_hits = spent.rebase_cache_hits;
}

}  // namespace

std::string StageMetrics::to_json() const {
  std::ostringstream out;
  out << "{\"stage\": ";
  json_escape(out, stage);
  out << ", \"skipped\": " << (skipped ? "true" : "false")
      << ", \"evaluations\": " << evaluations
      << ", \"cache_hits\": " << cache_hits
      << ", \"cache_misses\": " << cache_misses
      << ", \"sched_events_total\": " << sched_events_total
      << ", \"sched_events_resumed\": " << sched_events_resumed
      << ", \"rebase_cache_hits\": " << rebase_cache_hits
      << ", \"seconds\": ";
  json_seconds(out, seconds);
  out << "}";
  return out.str();
}

std::string metrics_to_json(const std::vector<StageMetrics>& stages) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out << ", ";
    out << stages[i].to_json();
  }
  out << "]";
  return out.str();
}

SynthesisContext::SynthesisContext(Application app, Architecture arch,
                                   SynthesisOptions options)
    : app_(std::move(app)),
      arch_(std::move(arch)),
      options_(std::move(options)),
      eval_(app_, arch_, options_.fault_model) {
  app_.validate(arch_);
  options_.fault_model.validate();
}

ThreadPool& SynthesisContext::pool() const {
  return options_.optimize.pool ? *options_.optimize.pool
                                : ThreadPool::shared();
}

void PolicyAssignmentStage::run(SynthesisContext& ctx, SynthesisState& state,
                                StageMetrics& metrics) {
  OptimizeOptions opt = ctx.options().optimize;
  opt.eval = &ctx.eval();
  opt.cancel = ctx.cancel_flag();
  OptimizeResult r =
      optimize_policy_and_mapping(ctx.app(), ctx.arch(), ctx.model(), opt);
  state.assignment = std::move(r.assignment);
  state.wcsl_bound = r.wcsl;
  state.schedulable = r.schedulable;
  state.evaluations += r.evaluations;
  fill_eval_metrics(metrics, r.eval_stats);
}

void CheckpointRefineStage::run(SynthesisContext& ctx, SynthesisState& state,
                                StageMetrics& metrics) {
  const SynthesisOptions& options = ctx.options();
  if (!options.refine_checkpoints || !options.optimize.optimize_checkpoints) {
    metrics.skipped = true;
    return;
  }
  CheckpointOptOptions opt;
  opt.max_checkpoints = options.optimize.max_checkpoints;
  opt.threads = options.optimize.threads;
  opt.pool = options.optimize.pool;
  opt.eval = &ctx.eval();
  opt.cancel = ctx.cancel_flag();
  CheckpointOptResult r = optimize_checkpoints_global(
      ctx.app(), ctx.arch(), ctx.model(), std::move(state.assignment), opt);
  state.assignment = std::move(r.assignment);
  state.wcsl_bound = r.wcsl;
  state.evaluations += r.evaluations;
  fill_eval_metrics(metrics, r.eval_stats);
}

void ScheduleTableStage::run(SynthesisContext& ctx, SynthesisState& state,
                             StageMetrics& metrics) {
  const SynthesisOptions& options = ctx.options();
  const EvalStats before = ctx.eval().stats();
  // Usually served straight from the cached base DP: the refinement stage
  // left the evaluator rebased on exactly this assignment.
  state.wcsl = ctx.eval().evaluate_full(state.assignment);
  state.schedulable = state.wcsl.meets_deadlines(ctx.app());
  fill_eval_metrics(metrics, ctx.eval().stats().since(before));
  if (options.build_schedule_tables) {
    try {
      CondScheduleOptions sched = options.schedule;
      sched.threads = options.optimize.threads;
      sched.pool = options.optimize.pool;
      state.schedule = conditional_schedule(ctx.app(), ctx.arch(),
                                            state.assignment, ctx.model(),
                                            sched);
      // The scenario-exact WCSL can only be tighter than the analytic bound.
      state.schedulable = state.schedulable ||
                          state.schedule->wcsl <= ctx.app().deadline();
    } catch (const std::length_error& e) {
      FTES_LOG(kInfo) << "schedule tables skipped: " << e.what();
    }
  }
}

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

SynthesisResult Pipeline::run(SynthesisContext& ctx) {
  metrics_.assign(stages_.size(), StageMetrics{});
  SynthesisState state;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    Stage& stage = *stages_[i];
    StageMetrics& metrics = metrics_[i];
    metrics.stage = stage.name();
    if (ctx.cancel_requested()) {
      metrics.skipped = true;
      continue;
    }
    StageProgress progress{static_cast<int>(i), stage_count(), stage.name(),
                           false};
    ctx.report_progress(progress);
    const Stopwatch watch;
    stage.run(ctx, state, metrics);
    metrics.seconds = watch.seconds();
    progress.finished = true;
    ctx.report_progress(progress);
  }

  SynthesisResult result;
  result.assignment = std::move(state.assignment);
  result.wcsl = std::move(state.wcsl);
  result.schedule = std::move(state.schedule);
  result.schedulable = state.schedulable;
  result.evaluations = state.evaluations;
  return result;
}

Pipeline Pipeline::default_pipeline() {
  Pipeline pipeline;
  pipeline.add(std::make_unique<PolicyAssignmentStage>())
      .add(std::make_unique<CheckpointRefineStage>())
      .add(std::make_unique<ScheduleTableStage>());
  return pipeline;
}

}  // namespace ftes
