// Stage-based synthesis pipeline (the staged flow of Section 6 as a
// first-class API).
//
// The paper's synthesis is inherently staged -- policy assignment +
// mapping, checkpoint refinement, conditional schedule-table generation --
// and tools want to run, skip, reorder or instrument individual stages
// without re-wiring them by hand.  A Pipeline is an ordered list of Stage
// objects sharing one SynthesisContext, which owns the problem (app /
// architecture / fault model + options), the deterministic seed and thread
// configuration, progress/cancellation hooks, and the shared incremental
// EvalContext (each optimizer rebases it on its own start; sharing reuses
// its workspaces and aggregates its counters).  Stages read and write a
// typed SynthesisState and report structured StageMetrics (evaluations,
// cache hits/misses, wall-clock) that serialize to JSON.
//
// `synthesize()` (core/synthesis.h) is a thin wrapper over
// Pipeline::default_pipeline() and produces bit-identical results.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/synthesis.h"
#include "opt/eval_context.h"

namespace ftes {

class ThreadPool;

/// Structured report of one stage run.
struct StageMetrics {
  std::string stage;
  bool skipped = false;       ///< disabled by options or cancelled
  long long evaluations = 0;  ///< objective evaluations spent in the stage
  long long cache_hits = 0;   ///< WCSL DP rows served from the EvalContext
  long long cache_misses = 0; ///< WCSL DP rows recomputed
  /// List-scheduler incrementality: placement events candidate schedules
  /// needed, and how many were served by checkpoint-snapshot resumes.
  long long sched_events_total = 0;
  long long sched_events_resumed = 0;
  long long rebase_cache_hits = 0;  ///< rebases served by the move cache
  double seconds = 0.0;             ///< wall-clock of the stage

  [[nodiscard]] std::string to_json() const;
};

/// JSON array of per-stage metrics (schema documented in docs/CLI.md).
[[nodiscard]] std::string metrics_to_json(
    const std::vector<StageMetrics>& stages);

/// Progress notification: one callback when a stage starts
/// (finished = false) and one when it completes (finished = true).
struct StageProgress {
  int index = 0;      ///< 0-based stage index
  int count = 0;      ///< total stages in the pipeline
  std::string stage;  ///< stage name
  bool finished = false;
};
using ProgressCallback = std::function<void(const StageProgress&)>;

/// The typed blackboard the stages read and write.
struct SynthesisState {
  PolicyAssignment assignment;  ///< F and M (after the optimizer stages)
  Time wcsl_bound = 0;          ///< analytic WCSL of the optimizer stages
  WcslResult wcsl;              ///< full analytic result (analysis stage)
  std::optional<CondScheduleResult> schedule;  ///< S, if built
  bool schedulable = false;
  int evaluations = 0;          ///< objective evaluations, legacy counting
};

/// Shared per-run context: problem, options, pool, seed, progress and
/// cancellation, and the incremental evaluator.  Owns copies of the
/// application and architecture so its lifetime is self-contained.
class SynthesisContext {
 public:
  /// Validates the model like the legacy facade did (throws
  /// std::invalid_argument on model errors).
  SynthesisContext(Application app, Architecture arch,
                   SynthesisOptions options);

  [[nodiscard]] const Application& app() const { return app_; }
  [[nodiscard]] const Architecture& arch() const { return arch_; }
  [[nodiscard]] const SynthesisOptions& options() const { return options_; }
  [[nodiscard]] const FaultModel& model() const {
    return options_.fault_model;
  }
  [[nodiscard]] std::uint64_t seed() const { return options_.optimize.seed; }
  [[nodiscard]] int threads() const { return options_.optimize.threads; }
  [[nodiscard]] ThreadPool& pool() const;

  [[nodiscard]] EvalContext& eval() { return eval_; }

  void on_progress(ProgressCallback callback) {
    progress_ = std::move(callback);
  }
  void report_progress(const StageProgress& progress) const {
    if (progress_) progress_(progress);
  }

  /// Cooperative cancellation: stages still to run are skipped, running
  /// optimizers return their best-so-far.  Callable from any thread (e.g.
  /// a progress callback or a watchdog).
  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::atomic<bool>* cancel_flag() const {
    return &cancel_;
  }

 private:
  Application app_;
  Architecture arch_;
  SynthesisOptions options_;
  EvalContext eval_;
  ProgressCallback progress_;
  std::atomic<bool> cancel_{false};
};

/// One synthesis stage.  Implementations read/write the SynthesisState and
/// fill the evaluation counters of their StageMetrics (the pipeline fills
/// name, wall-clock and skip state).
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void run(SynthesisContext& ctx, SynthesisState& state,
                   StageMetrics& metrics) = 0;
};

/// Tabu-search mapping + fault-tolerance policy assignment (src/opt).
class PolicyAssignmentStage : public Stage {
 public:
  [[nodiscard]] const char* name() const override {
    return "policy_assignment";
  }
  void run(SynthesisContext& ctx, SynthesisState& state,
           StageMetrics& metrics) override;
};

/// Global checkpoint-count refinement (skips itself unless both
/// options.refine_checkpoints and options.optimize.optimize_checkpoints).
class CheckpointRefineStage : public Stage {
 public:
  [[nodiscard]] const char* name() const override {
    return "checkpoint_refine";
  }
  void run(SynthesisContext& ctx, SynthesisState& state,
           StageMetrics& metrics) override;
};

/// Final analytic WCSL + schedulability, plus conditional schedule tables
/// when options.build_schedule_tables (length_error from the exponential
/// scenario tree downgrades to the analytic bound, as before).
class ScheduleTableStage : public Stage {
 public:
  [[nodiscard]] const char* name() const override {
    return "schedule_tables";
  }
  void run(SynthesisContext& ctx, SynthesisState& state,
           StageMetrics& metrics) override;
};

class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  Pipeline& add(std::unique_ptr<Stage> stage);
  [[nodiscard]] int stage_count() const {
    return static_cast<int>(stages_.size());
  }

  /// Runs the stages in order against one context.  Per-stage metrics are
  /// available from metrics() afterwards.
  SynthesisResult run(SynthesisContext& ctx);

  [[nodiscard]] const std::vector<StageMetrics>& metrics() const {
    return metrics_;
  }

  /// The stages `synthesize()` runs: policy assignment, checkpoint
  /// refinement, schedule tables.
  [[nodiscard]] static Pipeline default_pipeline();

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  std::vector<StageMetrics> metrics_;
};

}  // namespace ftes
