// Stage-based synthesis pipeline (the staged flow of Section 6 as a
// first-class API).
//
// The paper's synthesis is inherently staged -- policy assignment +
// mapping, checkpoint refinement, conditional schedule-table generation --
// and tools want to run, skip, reorder or instrument individual stages
// without re-wiring them by hand.  A Pipeline is an ordered list of Stage
// objects sharing one SynthesisContext, which owns the problem (app /
// architecture / fault model + options), the deterministic seed and thread
// configuration, progress/cancellation hooks, and the shared incremental
// EvalContext (each optimizer rebases it on its own start; sharing reuses
// its workspaces and aggregates its counters).  Stages read and write a
// typed SynthesisState and report structured StageMetrics (evaluations,
// cache hits/misses, wall-clock) that serialize to JSON.
//
// Two scheduling modes sit on top of the stage list:
//
//   * Speculative stage execution (options.speculate): table generation
//     for the refinement's incumbent starts in the background when the
//     refinement starts, hiding table latency when refinement does not
//     improve (SpeculationTask below; adoption is bit-identical to the
//     serial pipeline, asserted at adoption time).
//   * A deadline watchdog (options.stage_budget_ms / total_budget_ms):
//     the pipeline arms wall-clock budgets on the run's CancellationToken;
//     the stages' parallel chunk bodies poll it, so an expired budget
//     cancels within one chunk of work and the pipeline returns a
//     well-formed partial result with its StageMetrics marked timed_out.
//
// `synthesize()` (core/synthesis.h) is a thin wrapper over
// Pipeline::default_pipeline() and produces bit-identical results.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/synthesis.h"
#include "opt/eval_context.h"
#include "util/cancellation.h"

namespace ftes {

class ThreadPool;

/// Structured report of one stage run.
struct StageMetrics {
  std::string stage;
  bool skipped = false;       ///< disabled by options or cancelled
  long long evaluations = 0;  ///< objective evaluations spent in the stage
  long long cache_hits = 0;   ///< WCSL DP rows served from the EvalContext
  long long cache_misses = 0; ///< WCSL DP rows recomputed
  /// List-scheduler incrementality: placement events candidate schedules
  /// needed, and how many were served by checkpoint-snapshot resumes.
  long long sched_events_total = 0;
  long long sched_events_resumed = 0;
  long long rebase_cache_hits = 0;  ///< rebases served by the move cache
  /// Accepted-move rebases whose checkpoint log was produced by
  /// record-while-resuming instead of a from-scratch schedule build, and
  /// the rebases that still had to rebuild from scratch.
  long long rebase_log_recorded = 0;
  long long rebase_full_builds = 0;
  /// Of the recorded rebases, those that diffed a batch of >1 accepted
  /// moves against the retained grand-base log, and the rebases forced to
  /// a full rebuild by the snapshot-interval gate.
  long long rebase_batched = 0;
  long long rebase_interval_mismatch = 0;
  /// Copy-on-write snapshot storage: rebase-record prefix snapshots
  /// adopted by reference vs bytes actually materialized into snapshots.
  long long snapshot_refs_shared = 0;
  long long snapshot_bytes_copied = 0;
  /// Neighborhood-search engine counters (opt/search_engine.h) of the
  /// optimizer driving the stage; all zero for non-search stages.
  long long search_iterations = 0;
  long long search_accepted = 0;
  long long search_tabu_rejected = 0;
  long long search_aspiration = 0;
  double seconds = 0.0;  ///< wall-clock of the stage
  /// Speculative stage execution (SynthesisOptions::speculate): a hit
  /// adopted the background result computed during refinement, a miss
  /// discarded it (refinement improved, or the run was cancelled).
  long long spec_hits = 0;
  long long spec_misses = 0;
  double spec_seconds = 0.0;  ///< wall-clock the speculative task spent
  /// Deadline watchdog: the stage was cut short by a wall-clock budget;
  /// cancel latency is how long it kept working past the cancellation
  /// (bounded by one chunk of work between cancellation points).
  bool timed_out = false;
  double cancel_latency_seconds = 0.0;
  /// Adversarial fuzz sweep (sim/fuzzer.h) run against the stage's tables;
  /// all zero unless a fuzz pass ran (the "fuzz" pseudo-stage appended by
  /// the batch runner / CLI).
  long long fuzz_trials = 0;
  long long fuzz_failing_trials = 0;
  long long fuzz_violations = 0;
  Time fuzz_worst_completion = 0;
  /// Structural result cache (serve/result_cache.h): repeat submissions
  /// served without recomputation, and entries evicted to honour the byte
  /// budget.  All zero outside `ftes_cli --serve` (the "result_cache"
  /// pseudo-stage of the server's stats report).
  long long result_cache_hits = 0;
  long long result_cache_misses = 0;
  long long result_cache_evictions = 0;

  [[nodiscard]] std::string to_json() const;
};

/// JSON array of per-stage metrics (schema documented in docs/CLI.md).
[[nodiscard]] std::string metrics_to_json(
    const std::vector<StageMetrics>& stages);

/// Progress notification: one callback when a stage starts
/// (finished = false) and one when it completes (finished = true).
struct StageProgress {
  int index = 0;      ///< 0-based stage index
  int count = 0;      ///< total stages in the pipeline
  std::string stage;  ///< stage name
  bool finished = false;
};
using ProgressCallback = std::function<void(const StageProgress&)>;

class SpeculationTask;

/// The typed blackboard the stages read and write.
struct SynthesisState {
  PolicyAssignment assignment;  ///< F and M (after the optimizer stages)
  Time wcsl_bound = 0;          ///< analytic WCSL of the optimizer stages
  WcslResult wcsl;              ///< full analytic result (analysis stage)
  std::optional<CondScheduleResult> schedule;  ///< S, if built
  bool schedulable = false;
  int evaluations = 0;          ///< objective evaluations, legacy counting
  /// In-flight speculative table generation, launched by the pipeline when
  /// the refinement stage starts and consumed (adopted or discarded) by
  /// the schedule-table stage.
  std::shared_ptr<SpeculationTask> speculation;
};

/// Shared per-run context: problem, options, pool, seed, progress and
/// cancellation, and the incremental evaluator.  Owns copies of the
/// application and architecture so its lifetime is self-contained.
class SynthesisContext {
 public:
  /// Validates the model like the legacy facade did (throws
  /// std::invalid_argument on model errors).
  SynthesisContext(Application app, Architecture arch,
                   SynthesisOptions options);

  [[nodiscard]] const Application& app() const { return app_; }
  [[nodiscard]] const Architecture& arch() const { return arch_; }
  [[nodiscard]] const SynthesisOptions& options() const { return options_; }
  [[nodiscard]] const FaultModel& model() const {
    return options_.fault_model;
  }
  [[nodiscard]] std::uint64_t seed() const { return options_.optimize.seed; }
  [[nodiscard]] int threads() const { return options_.optimize.threads; }
  [[nodiscard]] ThreadPool& pool() const;

  [[nodiscard]] EvalContext& eval() { return eval_; }

  void on_progress(ProgressCallback callback) {
    progress_ = std::move(callback);
  }
  void report_progress(const StageProgress& progress) const {
    if (progress_) progress_(progress);
  }

  /// Cooperative cancellation: stages still to run are skipped, running
  /// optimizers return their best-so-far.  Callable from any thread (e.g.
  /// a progress callback or a watchdog thread).
  void request_cancel() { cancel_.request_cancel(); }
  [[nodiscard]] bool cancel_requested() const { return cancel_.cancelled(); }
  /// The run's cancellation token.  The pipeline arms the deadline
  /// watchdog on it (options().stage_budget_ms / total_budget_ms) and the
  /// stages hand it to the optimizers' and schedulers' chunk bodies.
  [[nodiscard]] CancellationToken& cancel_token() { return cancel_; }
  [[nodiscard]] const CancellationToken& cancel_token() const {
    return cancel_;
  }

 private:
  Application app_;
  Architecture arch_;
  SynthesisOptions options_;
  EvalContext eval_;
  ProgressCallback progress_;
  CancellationToken cancel_;
};

/// One synthesis stage.  Implementations read/write the SynthesisState and
/// fill the evaluation counters of their StageMetrics (the pipeline fills
/// name, wall-clock and skip state).
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void run(SynthesisContext& ctx, SynthesisState& state,
                   StageMetrics& metrics) = 0;
  /// The stage only refines state.assignment in place: when speculation is
  /// enabled the pipeline may start downstream table generation for the
  /// incumbent while this stage runs.
  [[nodiscard]] virtual bool refines_incumbent() const { return false; }
  /// The stage consumes SynthesisState::speculation (adopting or
  /// discarding it); the pipeline only launches speculation when such a
  /// stage is still ahead.
  [[nodiscard]] virtual bool consumes_speculation() const { return false; }
};

/// Speculative schedule-table generation (SynthesisOptions::speculate).
///
/// While CheckpointRefineStage iterates, the pipeline runs the
/// ScheduleTableStage work for the refinement's *incumbent* assignment as
/// a background task on the run's thread pool.  The task never touches
/// the shared EvalContext -- it evaluates the full WCSL DP from scratch
/// and builds tables through a private options copy -- so it is safe to
/// run concurrently with the refinement.  Adoption rule: the consuming
/// stage adopts the result iff refinement returned exactly the incumbent
/// and the task's full-DP WCSL matches the evaluator's cached rows
/// (asserting bit-identity with the serial pipeline); anything else
/// discards it and rebuilds serially.
class SpeculationTask {
 public:
  /// Snapshots `incumbent` and submits the work to ctx.pool().  The task
  /// keeps references into ctx (application/architecture); Pipeline::run
  /// finishes or abandons it before returning, so they never dangle.
  [[nodiscard]] static std::shared_ptr<SpeculationTask> launch(
      SynthesisContext& ctx, const PolicyAssignment& incumbent);

  [[nodiscard]] const PolicyAssignment& incumbent() const {
    return incumbent_;
  }

  /// Claim-or-wait: a task the pool has not started yet runs inline on the
  /// calling thread (a zero-worker pool still speculates correctly, it
  /// just hides no latency); a running task is waited for.  Returns false
  /// when the task was cancelled mid-run (its result is unusable).  An
  /// exception the work threw (scheduler deadlock, bad_alloc) is rethrown
  /// here -- exactly where the serial stage would have thrown it.
  bool finish();

  /// Cancels without joining: a running task observes the token at its
  /// next poll and winds down on its own.  Use when the caller has better
  /// things to do than wait (the discard path rebuilds tables serially
  /// while the dead task drains); someone must still abandon() the task
  /// before the context goes away -- Pipeline::run's drain guard does.
  void discard() { cancel_.request_cancel(); }

  /// Cancels and joins without consuming: a never-started task is marked
  /// abandoned (its pool job becomes a no-op), a running one is cancelled
  /// through its chained token and drained.  The join is bounded by one
  /// chunk of the task's work -- one scenario simulation, or its single
  /// full WCSL evaluation (which has no interior cancellation point).
  void abandon();

  /// Valid after finish() returned true.
  [[nodiscard]] const WcslResult& wcsl() const { return wcsl_; }
  [[nodiscard]] std::optional<CondScheduleResult>& schedule() {
    return schedule_;
  }
  /// Wall-clock the task spent computing (0 when abandoned before start).
  [[nodiscard]] double seconds() const { return seconds_; }

 private:
  SpeculationTask(SynthesisContext& ctx, PolicyAssignment incumbent);
  void run();       ///< pool entry: claim kPending -> kRunning, then work
  void run_body();  ///< the ScheduleTableStage work against incumbent_

  enum State { kPending, kRunning, kDone, kAbandoned };

  const Application& app_;
  const Architecture& arch_;
  FaultModel model_;
  CondScheduleOptions sched_;
  bool build_tables_;
  PolicyAssignment incumbent_;
  CancellationToken cancel_;  ///< chained to the pipeline's token

  std::mutex mutex_;
  std::condition_variable cv_;
  State state_ = kPending;
  bool ok_ = false;
  std::exception_ptr error_;  ///< rethrown by finish(); abandon() swallows
  WcslResult wcsl_;
  std::optional<CondScheduleResult> schedule_;
  double seconds_ = 0.0;
};

/// Tabu-search mapping + fault-tolerance policy assignment (src/opt).
class PolicyAssignmentStage : public Stage {
 public:
  [[nodiscard]] const char* name() const override {
    return "policy_assignment";
  }
  void run(SynthesisContext& ctx, SynthesisState& state,
           StageMetrics& metrics) override;
};

/// Global checkpoint-count refinement (skips itself unless both
/// options.refine_checkpoints and options.optimize.optimize_checkpoints).
class CheckpointRefineStage : public Stage {
 public:
  [[nodiscard]] const char* name() const override {
    return "checkpoint_refine";
  }
  void run(SynthesisContext& ctx, SynthesisState& state,
           StageMetrics& metrics) override;
  [[nodiscard]] bool refines_incumbent() const override { return true; }
};

/// Final analytic WCSL + schedulability, plus conditional schedule tables
/// when options.build_schedule_tables (length_error from the exponential
/// scenario tree downgrades to the analytic bound, as before).
class ScheduleTableStage : public Stage {
 public:
  [[nodiscard]] const char* name() const override {
    return "schedule_tables";
  }
  void run(SynthesisContext& ctx, SynthesisState& state,
           StageMetrics& metrics) override;
  [[nodiscard]] bool consumes_speculation() const override { return true; }
};

class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  Pipeline& add(std::unique_ptr<Stage> stage);
  [[nodiscard]] int stage_count() const {
    return static_cast<int>(stages_.size());
  }

  /// Runs the stages in order against one context.  Per-stage metrics are
  /// available from metrics() afterwards.
  SynthesisResult run(SynthesisContext& ctx);

  [[nodiscard]] const std::vector<StageMetrics>& metrics() const {
    return metrics_;
  }

  /// The stages `synthesize()` runs: policy assignment, checkpoint
  /// refinement, schedule tables.
  [[nodiscard]] static Pipeline default_pipeline();

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  std::vector<StageMetrics> metrics_;
};

}  // namespace ftes
