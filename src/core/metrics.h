// Evaluation metrics of Section 6.
//
// FTO (fault tolerance overhead): percentage increase of the schedule
// length due to fault tolerance, FTO = (WCSL_ft - L_nft) / L_nft * 100,
// where L_nft is the schedule length of the same mapper/scheduler with
// fault tolerance ignored.  Figs. 7 and 8 report the *average percentage
// deviation* of an approach's FTO from a baseline's FTO.
#pragma once

#include <vector>

#include "util/time_types.h"

namespace ftes {

/// FTO in percent.  Requires nft > 0.
[[nodiscard]] double fto_percent(Time ft_wcsl, Time nft_length);

/// Percentage deviation of `value` from `baseline` (positive == worse when
/// both are overheads).  Requires baseline > 0.
[[nodiscard]] double percent_deviation(double value, double baseline);

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(const std::vector<double>& xs);

}  // namespace ftes
